"""Dashboard report: one self-contained HTML file + a terminal summary.

Folds the run's telemetry — :class:`~repro.obs.recorder.FlightRecorder`
timelines, :class:`~repro.obs.metrics.MetricsRegistry` snapshots, the
:class:`~repro.obs.slo.SLOMonitor` attainment/alert state and the
:class:`~repro.serving.metrics.ServingMetrics` reductions — into a
single HTML document with **no external assets**: styles are inline,
charts are inline SVG sparklines, and light/dark theming rides CSS
custom properties on ``prefers-color-scheme``. The same data renders as
a plain-text summary for terminals and CI logs.

Sections: SLO attainment table (per-target burn rates and status),
alert log, critical-path attribution (stacked per-component budget bars
and the slowest-request table, when an
:class:`~repro.obs.attribution.AttributionCollector` was attached),
cluster timeline sparkline tiles (queues, KV, per-kind link
utilisation, INA switch pressure), top-k busiest links, policy-flip
timeline, the per-group policy selection table, and the online
replanning "Plan transitions" event log (when ``--online-replan`` ran).
"""

from __future__ import annotations

import html
import json
import math
from typing import Any

__all__ = [
    "build_report_data",
    "render_html",
    "render_text",
    "write_report",
]


# ---------------------------------------------------------------------------
# data assembly
# ---------------------------------------------------------------------------


def _finite(x: Any) -> float | None:
    try:
        v = float(x)
    except (TypeError, ValueError):
        return None
    return v if math.isfinite(v) else None


def build_report_data(
    observer=None,
    serving_metrics=None,
    title: str = "repro serving run",
    meta: dict[str, Any] | None = None,
    whatif: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Fold observer + metrics into one JSON-serialisable report dict.

    ``whatif`` is an optional
    :meth:`~repro.obs.whatif.WhatIfResult.to_payload` dump; when given,
    the report gains a ranked "What-if" intervention ladder.
    """
    data: dict[str, Any] = {
        "title": title,
        "meta": dict(meta or {}),
        "summary": {},
        "slo": None,
        "flight": None,
        "attribution": None,
        "whatif": whatif,
        "policy_selections": [],
        "transitions": [],
    }
    if serving_metrics is not None:
        data["summary"] = {
            k: _finite(v) for k, v in serving_metrics.summary().items()
        }

    if observer is None:
        return data

    now = 0.0
    recorder = getattr(observer, "recorder", None)
    if recorder is not None:
        data["transitions"] = recorder.replan_timeline()
    if recorder is not None and len(recorder):
        samples = recorder.samples()
        now = samples[-1].time
        kinds = sorted(
            {k for s in samples for k in s.link_util}
        )
        switches = sorted(
            {sw for s in samples for sw in s.switch_pressure}
        )
        data["flight"] = {
            "n_samples": len(recorder),
            "evicted": recorder.evicted,
            "times": [s.time for s in samples],
            "series": {
                name: recorder.series(name)[1]
                for name in (
                    "prefill_queue",
                    "decode_pending",
                    "decode_active",
                    "kv_utilization",
                )
            },
            "link_kinds": {
                kind: recorder.link_kind_series(kind, "max")
                for kind in kinds
            },
            "switch_pressure": {
                str(sw): [
                    (s.time, s.switch_pressure[sw][1])
                    for s in samples
                    if sw in s.switch_pressure
                ]
                for sw in switches
            },
            "aggregators": {
                str(sw): [
                    (s.time, s.aggregators[sw])
                    for s in samples
                    if sw in s.aggregators
                ]
                for sw in sorted(
                    {sw for s in samples for sw in s.aggregators}
                )
            },
            "top_links": recorder.top_links(),
            "policy_flips": recorder.policy_flips(),
        }

    slo = getattr(observer, "slo", None)
    if slo is not None:
        data["slo"] = slo.snapshot(now)

    attribution = getattr(observer, "attribution", None)
    if attribution is not None and attribution.finished:
        data["attribution"] = {
            "n_requests": len(attribution.finished),
            "budget": attribution.budget(),
            "slowest": [
                {
                    "request_id": a.request_id,
                    "total_s": a.total,
                    "ttft_s": a.ttft,
                    "decode_s": a.decode_latency,
                    "dominant": a.dominant[0],
                    "dominant_s": a.dominant[1],
                    "detail": a.dominant_detail(),
                    "components": dict(a.components),
                    "requeues": a.requeues,
                    "kv_retries": a.kv_retries,
                }
                for a in attribution.slowest(5)
            ],
        }

    metrics = getattr(observer, "metrics", None)
    if metrics is not None:
        sel = metrics.get("repro_policy_selections_total")
        if sel is not None:
            data["policy_selections"] = sorted(
                (
                    {"labels": dict(k), "count": v}
                    for k, v in sel._values.items()
                ),
                key=lambda row: -row["count"],
            )
    return data


# ---------------------------------------------------------------------------
# inline SVG sparklines
# ---------------------------------------------------------------------------

_SPARK_W = 220
_SPARK_H = 44
_PAD = 3


def _sparkline_svg(
    times: list[float],
    values: list[float],
    fmt: str = "{:.2f}",
) -> str:
    """One 2px-line sparkline with endpoint dot and hover titles."""
    pts = [
        (t, v)
        for t, v in zip(times, values)
        if _finite(v) is not None
    ]
    if len(pts) < 2:
        return (
            f'<svg class="spark" viewBox="0 0 {_SPARK_W} {_SPARK_H}" '
            'role="img" aria-label="not enough samples"></svg>'
        )
    t0, t1 = pts[0][0], pts[-1][0]
    vs = [v for _, v in pts]
    lo, hi = min(vs), max(vs)
    if hi - lo < 1e-12:
        lo, hi = lo - 0.5, hi + 0.5
    span_t = (t1 - t0) or 1.0

    def x(t: float) -> float:
        return _PAD + (t - t0) / span_t * (_SPARK_W - 2 * _PAD)

    def y(v: float) -> float:
        return _PAD + (hi - v) / (hi - lo) * (_SPARK_H - 2 * _PAD)

    path = " ".join(f"{x(t):.1f},{y(v):.1f}" for t, v in pts)
    ex, ey = x(pts[-1][0]), y(pts[-1][1])
    # Per-point hover targets (wider than the mark) with native titles.
    hover = []
    if len(pts) <= 400:
        half = (_SPARK_W - 2 * _PAD) / max(len(pts) - 1, 1) / 2
        for t, v in pts:
            cx = x(t)
            tip = html.escape(f"t={t:.1f}s: {fmt.format(v)}")
            hover.append(
                f'<rect x="{cx - half:.1f}" y="0" '
                f'width="{2 * half:.1f}" height="{_SPARK_H}" '
                f'fill="transparent"><title>{tip}</title></rect>'
            )
    return (
        f'<svg class="spark" viewBox="0 0 {_SPARK_W} {_SPARK_H}" '
        f'width="{_SPARK_W}" height="{_SPARK_H}" role="img">'
        f'<polyline points="{path}" fill="none" '
        'stroke="var(--series-1)" stroke-width="2" '
        'stroke-linejoin="round" stroke-linecap="round"/>'
        f'<circle cx="{ex:.1f}" cy="{ey:.1f}" r="4" '
        'fill="var(--series-1)" stroke="var(--surface-1)" '
        'stroke-width="2"/>'
        f"{''.join(hover)}"
        "</svg>"
    )


def _tile(label: str, value: str, spark: str) -> str:
    return (
        '<div class="tile">'
        f'<div class="tile-label">{html.escape(label)}</div>'
        f'<div class="tile-value">{html.escape(value)}</div>'
        f"{spark}"
        "</div>"
    )


# ---------------------------------------------------------------------------
# HTML rendering
# ---------------------------------------------------------------------------

_CSS = """
:root { color-scheme: light dark; }
.viz-root {
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --muted: #898781; --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #8f5fd6; --series-5: #d6a21f; --series-6: #d64a8a;
  --series-7: #2ab5c9; --series-8: #7a8a2a; --series-9: #8a8a8a;
  --status-good: #0ca30c; --status-warning: #fab219;
  --status-critical: #d03b3b;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  color: var(--text-primary); background: var(--page);
  margin: 0; padding: 24px; line-height: 1.45;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --muted: #898781; --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #9a6ee0; --series-5: #c9981f; --series-6: #e0569a;
    --series-7: #31aec1; --series-8: #8a9a35; --series-9: #9a9a9a;
  }
}
.viz-root .cpbar { display: flex; width: 100%; max-width: 640px;
  height: 18px; border-radius: 4px; overflow: hidden;
  border: 1px solid var(--border); margin: 4px 0 10px; }
.viz-root .cpbar span { display: block; height: 100%; }
.viz-root .cplegend { display: flex; flex-wrap: wrap; gap: 4px 14px;
  font-size: 12px; color: var(--text-secondary); margin: 2px 0 14px; }
.viz-root .cplegend .key { display: inline-block; width: 10px;
  height: 10px; border-radius: 2px; margin-right: 4px; }
.viz-root .cpbar-label { font-size: 12px;
  color: var(--text-secondary); }
.viz-root h1 { font-size: 20px; margin: 0 0 2px; }
.viz-root h2 { font-size: 14px; margin: 28px 0 10px;
  color: var(--text-secondary); text-transform: uppercase;
  letter-spacing: 0.04em; }
.viz-root .sub { color: var(--muted); font-size: 13px; margin: 0 0 18px; }
.viz-root table { border-collapse: collapse; font-size: 13px;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; }
.viz-root th, .viz-root td { padding: 6px 12px; text-align: left;
  border-bottom: 1px solid var(--grid); }
.viz-root td.num, .viz-root th.num { text-align: right;
  font-variant-numeric: tabular-nums; }
.viz-root tr:last-child td { border-bottom: none; }
.viz-root th { color: var(--text-secondary); font-weight: 600; }
.viz-root .tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.viz-root .tile { background: var(--surface-1); padding: 10px 14px;
  border: 1px solid var(--border); border-radius: 6px; }
.viz-root .tile-label { font-size: 12px; color: var(--text-secondary); }
.viz-root .tile-value { font-size: 20px; font-weight: 600;
  margin: 2px 0 6px; }
.viz-root .spark { display: block; }
.viz-root .status { font-weight: 600; white-space: nowrap; }
.viz-root .status::before { content: "\\25CF\\00A0"; }
.viz-root .status.ok { color: var(--status-good); }
.viz-root .status.ticket { color: var(--status-warning); }
.viz-root .status.page { color: var(--status-critical); }
.viz-root .empty { color: var(--muted); font-size: 13px; }
"""


def _status_cell(paging: bool, ticketing: bool) -> str:
    if paging:
        return '<span class="status page">page</span>'
    if ticketing:
        return '<span class="status ticket">ticket</span>'
    return '<span class="status ok">met</span>'


def _fmt(v: Any, spec: str = "{:.3g}") -> str:
    f = _finite(v)
    return spec.format(f) if f is not None else "—"


def _slo_table(slo: dict | None) -> str:
    if not slo or not slo.get("targets"):
        return '<p class="empty">no SLO targets configured</p>'
    rows = []
    for t in slo["targets"]:
        att_fast = t.get("attainment_fast")
        att_slow = t.get("attainment_slow")
        rows.append(
            "<tr>"
            f"<td>{html.escape(t['name'])}</td>"
            f"<td class='num'>{t['objective']:.0%}</td>"
            f"<td class='num'>{_fmt(att_fast, '{:.1%}')}</td>"
            f"<td class='num'>{_fmt(att_slow, '{:.1%}')}</td>"
            f"<td class='num'>{t['burn_fast']:.2f}x</td>"
            f"<td class='num'>{t['burn_slow']:.2f}x</td>"
            f"<td class='num'>{t['n_slow']}</td>"
            f"<td>{_status_cell(t['paging'], t['ticketing'])}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr>"
        "<th>SLO</th><th class='num'>objective</th>"
        "<th class='num'>attain (fast win)</th>"
        "<th class='num'>attain (slow win)</th>"
        "<th class='num'>burn fast</th><th class='num'>burn slow</th>"
        "<th class='num'>requests</th><th>status</th>"
        f"</tr></thead><tbody>{''.join(rows)}</tbody></table>"
    )


def _alert_table(slo: dict | None) -> str:
    alerts = (slo or {}).get("alerts") or []
    if not alerts:
        return '<p class="empty">no alerts fired</p>'
    rows = []
    for a in alerts:
        cls = a["severity"] if a["state"] == "firing" else "ok"
        rows.append(
            "<tr>"
            f"<td class='num'>{a['time']:.1f}s</td>"
            f"<td><span class='status {cls}'>{a['severity']}</span></td>"
            f"<td>{html.escape(a['state'])}</td>"
            f"<td>{html.escape(a['slo'])}</td>"
            f"<td class='num'>{a['burn_long']:.1f}x</td>"
            f"<td class='num'>{_fmt(a['attainment'], '{:.1%}')}</td>"
            f"<td>{html.escape(a['message'])}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr>"
        "<th class='num'>time</th><th>severity</th><th>state</th>"
        "<th>SLO</th><th class='num'>burn</th>"
        "<th class='num'>attainment</th><th>detail</th>"
        f"</tr></thead><tbody>{''.join(rows)}</tbody></table>"
    )


def _transition_detail(ev: dict) -> str:
    """Compact ``key=value`` rendering of an event's extra fields."""
    parts = []
    for k, v in ev.items():
        if k in ("time", "event", "from_plan", "to_plan"):
            continue
        f = _finite(v)
        parts.append(f"{k}={f:.4g}" if f is not None else f"{k}={v}")
    return " ".join(parts)


def _transitions_section(transitions: list[dict]) -> str:
    if not transitions:
        return (
            '<p class="empty">no replanning activity — run with '
            "<code>--online-replan</code> to arm the drift "
            "detector</p>"
        )
    rows = []
    for ev in transitions:
        name = ev["event"]
        cls = {
            "transition_complete": "ok",
            "transition_rollback": "page",
            "replan_suppressed": "ticket",
        }.get(name, "")
        plan = ""
        if ev.get("from_plan") or ev.get("to_plan"):
            plan = (
                f"{ev.get('from_plan', '?')} &rarr; "
                f"{ev.get('to_plan', '?')}"
            )
        rows.append(
            "<tr>"
            f"<td class='num'>{ev['time']:.2f}s</td>"
            f"<td><span class='status {cls}'>{html.escape(name)}"
            "</span></td>"
            f"<td>{plan}</td>"
            f"<td>{html.escape(_transition_detail(ev))}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr>"
        "<th class='num'>time</th><th>event</th><th>plan</th>"
        "<th>detail</th>"
        f"</tr></thead><tbody>{''.join(rows)}</tbody></table>"
    )


def _timeline_tiles(flight: dict | None) -> str:
    if not flight:
        return (
            '<p class="empty">flight recorder disabled — run with the '
            "recorder attached to see timelines</p>"
        )
    times = flight["times"]
    tiles = []
    labels = {
        "prefill_queue": ("prefill queue", "{:.0f}"),
        "decode_pending": ("decode pending", "{:.0f}"),
        "decode_active": ("decode batch", "{:.0f}"),
        "kv_utilization": ("KV-cache utilisation", "{:.1%}"),
    }
    for key, (label, fmt) in labels.items():
        vals = flight["series"].get(key) or []
        if not vals:
            continue
        last = _finite(vals[-1])
        tiles.append(
            _tile(
                label,
                fmt.format(last) if last is not None else "—",
                _sparkline_svg(times, vals, fmt),
            )
        )
    for kind, (kt, kv) in sorted(flight["link_kinds"].items()):
        if not kv:
            continue
        tiles.append(
            _tile(
                f"{kind} link util (max)",
                "{:.1%}".format(kv[-1]),
                _sparkline_svg(kt, kv, "{:.1%}"),
            )
        )
    for sw, pts in sorted(flight["switch_pressure"].items()):
        if not pts:
            continue
        st = [p[0] for p in pts]
        sv = [p[1] for p in pts]
        tiles.append(
            _tile(
                f"INA switch {sw} port pressure",
                "{:.1%}".format(sv[-1]),
                _sparkline_svg(st, sv, "{:.1%}"),
            )
        )
    for sw, pts in sorted((flight.get("aggregators") or {}).items()):
        occ = [
            (t, c["pending"] / max(c["pending"] + c["free_slots"], 1))
            for t, c in pts
        ]
        if not occ:
            continue
        tiles.append(
            _tile(
                f"switch {sw} aggregator occupancy",
                "{:.1%}".format(occ[-1][1]),
                _sparkline_svg(
                    [p[0] for p in occ], [p[1] for p in occ], "{:.1%}"
                ),
            )
        )
    return f'<div class="tiles">{"".join(tiles)}</div>'


def _top_links_table(flight: dict | None) -> str:
    links = (flight or {}).get("top_links") or []
    if not links:
        return '<p class="empty">no link ever exceeded the record threshold</p>'
    rows = [
        "<tr>"
        f"<td class='num'>{lid}</td><td>{html.escape(kind)}</td>"
        f"<td class='num'>{util:.1%}</td>"
        "</tr>"
        for lid, kind, util in links
    ]
    return (
        "<table><thead><tr><th class='num'>link</th><th>kind</th>"
        "<th class='num'>peak util</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _policy_tables(data: dict) -> str:
    out = []
    flips = (data.get("flight") or {}).get("policy_flips") or []
    if flips:
        rows = [
            "<tr>"
            f"<td class='num'>{f['time']:.1f}s</td>"
            f"<td>{html.escape(f['group'])}</td>"
            f"<td>{html.escape(f['from'])}</td>"
            f"<td>{html.escape(f['to'])}</td>"
            "</tr>"
            for f in flips
        ]
        out.append(
            "<table><thead><tr><th class='num'>time</th><th>group</th>"
            "<th>from</th><th>to</th></tr></thead>"
            f"<tbody>{''.join(rows)}</tbody></table>"
        )
    else:
        out.append(
            '<p class="empty">no policy flips recorded (static plan or '
            "stable load)</p>"
        )
    sels = data.get("policy_selections") or []
    if sels:
        rows = [
            "<tr>"
            f"<td>{html.escape(s['labels'].get('group', ''))}</td>"
            f"<td>{html.escape(s['labels'].get('policy', ''))}</td>"
            f"<td>{html.escape(s['labels'].get('mode', ''))}</td>"
            f"<td class='num'>{int(s['count'])}</td>"
            "</tr>"
            for s in sels[:20]
        ]
        out.append(
            "<h2>Policy selections</h2>"
            "<table><thead><tr><th>group</th><th>policy</th><th>mode</th>"
            "<th class='num'>selections</th></tr></thead>"
            f"<tbody>{''.join(rows)}</tbody></table>"
        )
    return "".join(out)


#: Stable component -> CSS series-colour assignment for the stacked bars.
_CP_COLORS = {
    "queue_wait": "var(--series-5)",
    "fault_redo": "var(--status-critical)",
    "prefill_compute": "var(--series-1)",
    "prefill_allreduce": "var(--series-2)",
    "kv_transfer": "var(--series-7)",
    "kv_retry_backoff": "var(--series-6)",
    "decode_wait": "var(--series-9)",
    "decode_compute": "var(--series-3)",
    "decode_allreduce": "var(--series-4)",
}


def _cp_stacked_bar(budget: dict, stat: str) -> str:
    """One horizontal stacked bar over the per-component ``stat``."""
    total = sum(s.get(stat, 0.0) for s in budget.values())
    if total <= 0:
        return ""
    segs = []
    for name, stats in budget.items():
        v = stats.get(stat, 0.0)
        frac = v / total
        if frac < 0.001:
            continue
        tip = html.escape(f"{name}: {v:.4f}s ({frac:.1%})")
        segs.append(
            f'<span style="width:{frac * 100:.2f}%;'
            f'background:{_CP_COLORS.get(name, "var(--muted)")}" '
            f'title="{tip}"></span>'
        )
    return (
        f'<div class="cpbar-label">{stat} budget '
        f"({total:.3f}s total)</div>"
        f'<div class="cpbar">{"".join(segs)}</div>'
    )


def _attribution_section(attribution: dict | None) -> str:
    """Stacked per-component budget bars + the slowest-request table."""
    if not attribution:
        return (
            '<p class="empty">attribution disabled — attach an '
            "AttributionCollector (or run `python -m repro explain`) "
            "to decompose per-request critical paths</p>"
        )
    budget = attribution.get("budget") or {}
    legend = "".join(
        f'<span><span class="key" style="background:'
        f'{_CP_COLORS.get(name, "var(--muted)")}"></span>'
        f"{html.escape(name)}</span>"
        for name, stats in budget.items()
        if stats.get("share", 0.0) >= 0.001
    )
    bars = (
        f'<p class="sub">over {attribution["n_requests"]} finished '
        "requests; segment = component share of the per-request "
        "p50/p99 time budget</p>"
        f"{_cp_stacked_bar(budget, 'p50')}"
        f"{_cp_stacked_bar(budget, 'p99')}"
        f'<div class="cplegend">{legend}</div>'
    )
    rows = []
    for r in attribution.get("slowest") or []:
        flags = []
        if r.get("requeues"):
            flags.append(f"{r['requeues']} requeue")
        if r.get("kv_retries"):
            flags.append(f"{r['kv_retries']} kv-retry")
        detail = r.get("detail") or ""
        if flags:
            detail = f"{detail} [{', '.join(flags)}]" if detail else (
                f"[{', '.join(flags)}]"
            )
        rows.append(
            "<tr>"
            f"<td class='num'>{r['request_id']}</td>"
            f"<td class='num'>{r['total_s']:.3f}s</td>"
            f"<td class='num'>{r['ttft_s']:.3f}s</td>"
            f"<td>{html.escape(r['dominant'])}</td>"
            f"<td class='num'>{r['dominant_s']:.3f}s</td>"
            f"<td>{html.escape(detail)}</td>"
            "</tr>"
        )
    table = (
        "<table><thead><tr>"
        "<th class='num'>request</th><th class='num'>total</th>"
        "<th class='num'>TTFT</th><th>dominant component</th>"
        "<th class='num'>time</th><th>detail</th>"
        f"</tr></thead><tbody>{''.join(rows)}</tbody></table>"
    )
    return bars + "<h2>Slowest requests</h2>" + table


def _whatif_section(whatif: dict | None) -> str:
    """Ranked intervention bars: predicted Δp99 TTFT per upgrade."""
    if not whatif or not whatif.get("interventions"):
        return (
            '<p class="empty">no what-if profile attached — run '
            "`python -m repro whatif` to rank counterfactual "
            "bottlenecks</p>"
        )
    base = whatif.get("baseline") or {}
    base_p99 = _finite(base.get("p99_ttft_s")) or 0.0
    rows = whatif["interventions"]
    max_gain = max(
        (row["delta"]["p99_ttft_s"] for row in rows), default=0.0
    )
    out = [
        '<p class="sub">predicted improvement if one resource were '
        f"k&times; faster/bigger; baseline p99 TTFT {base_p99:.3f}s"
        + (
            ", validated against counterfactual re-simulation"
            if whatif.get("validated")
            else ""
        )
        + "</p>"
    ]
    bars = []
    for row in rows:
        iv = row["intervention"]
        gain = row["delta"]["p99_ttft_s"]
        frac = gain / max_gain if max_gain > 0 else 0.0
        pct = gain / base_p99 if base_p99 > 0 else 0.0
        note = f"&Delta;p99 TTFT {gain:+.4f}s ({pct:+.1%})"
        if "rel_error" in row:
            ok = row.get("within_tolerance")
            cls = "ok" if ok else "page"
            verdict = "ok" if ok else "diverged"
            note += (
                f" &middot; resim {row['resim_delta']['p99_ttft_s']:+.4f}s "
                f'<span class="status {cls}">'
                f"err {row['rel_error']:.0%} {verdict}</span>"
            )
        bars.append(
            '<div class="cpbar-label">'
            f"{html.escape(iv['label'])} &mdash; {note}</div>"
            '<div class="cpbar"><span style="width:'
            f'{max(frac, 0.0) * 100:.2f}%;'
            'background:var(--series-1)"></span></div>'
        )
    out.append("".join(bars))
    return "".join(out)


def _summary_tiles(summary: dict) -> str:
    if not summary:
        return ""
    spec = [
        ("requests served", "finished", "{:.0f}"),
        ("SLA attainment", "attainment", "{:.1%}"),
        ("mean TTFT", "mean_ttft_s", "{:.3f}s"),
        ("p99 TTFT", "p99_ttft_s", "{:.3f}s"),
        ("mean TPOT", "mean_tpot_s", "{:.4f}s"),
        ("p99 TPOT", "p99_tpot_s", "{:.4f}s"),
    ]
    tiles = []
    for label, key, fmt in spec:
        v = _finite(summary.get(key))
        tiles.append(
            _tile(label, fmt.format(v) if v is not None else "—", "")
        )
    return f'<div class="tiles">{"".join(tiles)}</div>'


def render_html(data: dict[str, Any]) -> str:
    """Render the folded report data as one self-contained HTML page."""
    meta = data.get("meta") or {}
    sub = " · ".join(
        f"{html.escape(str(k))}={html.escape(str(v))}"
        for k, v in meta.items()
    )
    flight = data.get("flight")
    evicted_note = ""
    if flight and flight.get("evicted"):
        evicted_note = (
            f'<p class="sub">ring buffer evicted {flight["evicted"]} '
            "older samples</p>"
        )
    body = (
        f"<h1>{html.escape(data.get('title', 'serving run'))}</h1>"
        f'<p class="sub">{sub}</p>'
        f"{_summary_tiles(data.get('summary') or {})}"
        "<h2>SLO attainment</h2>"
        f"{_slo_table(data.get('slo'))}"
        "<h2>Alert log</h2>"
        f"{_alert_table(data.get('slo'))}"
        "<h2>Critical-path attribution</h2>"
        f"{_attribution_section(data.get('attribution'))}"
        "<h2>What-if: counterfactual bottleneck ladder</h2>"
        f"{_whatif_section(data.get('whatif'))}"
        "<h2>Cluster timeline</h2>"
        f"{evicted_note}"
        f"{_timeline_tiles(flight)}"
        "<h2>Busiest links</h2>"
        f"{_top_links_table(flight)}"
        "<h2>Policy-flip timeline</h2>"
        f"{_policy_tables(data)}"
        "<h2>Plan transitions</h2>"
        f"{_transitions_section(data.get('transitions') or [])}"
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        '<meta name="viewport" content="width=device-width,initial-scale=1">'
        f"<title>{html.escape(data.get('title', 'report'))}</title>"
        f"<style>{_CSS}</style></head>"
        f'<body class="viz-root">{body}'
        "<script type=\"application/json\" id=\"report-data\">"
        f"{json.dumps(data, default=str)}"
        "</script></body></html>\n"
    )


# ---------------------------------------------------------------------------
# plain-text rendering
# ---------------------------------------------------------------------------


def render_text(data: dict[str, Any]) -> str:
    """Terminal-friendly summary of the same report data."""
    lines = [data.get("title", "serving run")]
    meta = data.get("meta") or {}
    if meta:
        lines.append(
            "  " + " ".join(f"{k}={v}" for k, v in meta.items())
        )
    summary = data.get("summary") or {}
    if summary:
        lines.append("summary:")
        for k, v in summary.items():
            f = _finite(v)
            lines.append(
                f"  {k:20s} {f:.4g}" if f is not None else f"  {k:20s} —"
            )
    slo = data.get("slo")
    if slo and slo.get("targets"):
        lines.append("SLOs:")
        for t in slo["targets"]:
            status = (
                "PAGE"
                if t["paging"]
                else "TICKET"
                if t["ticketing"]
                else "met"
            )
            att = t.get("attainment_slow")
            att_s = f"{att:.1%}" if att is not None else "n/a"
            lines.append(
                f"  {t['name']:24s} attain {att_s:>7s}  "
                f"burn {t['burn_fast']:.2f}x/{t['burn_slow']:.2f}x  "
                f"[{status}]"
            )
        alerts = slo.get("alerts") or []
        lines.append(f"alerts: {len(alerts)}")
        for a in alerts[:10]:
            lines.append(f"  {a['time']:8.1f}s {a['message']}")
        if len(alerts) > 10:
            lines.append(f"  ... and {len(alerts) - 10} more")
    attribution = data.get("attribution")
    if attribution:
        budget = attribution.get("budget") or {}
        lines.append(
            "critical path "
            f"({attribution['n_requests']} requests attributed):"
        )
        for name, stats in budget.items():
            if stats.get("p99", 0.0) < 1e-6:
                continue
            lines.append(
                f"  {name:20s} p50 {stats['p50']:.4f}s  "
                f"p99 {stats['p99']:.4f}s  "
                f"share {stats['share']:.1%}"
            )
        for r in attribution.get("slowest") or []:
            lines.append(
                f"  slowest req {r['request_id']}: "
                f"{r['total_s']:.3f}s total, dominant "
                f"{r['dominant']} {r['dominant_s']:.3f}s"
                + (f" ({r['detail']})" if r.get("detail") else "")
            )
    whatif = data.get("whatif")
    if whatif and whatif.get("interventions"):
        base_p99 = _finite(
            (whatif.get("baseline") or {}).get("p99_ttft_s")
        )
        lines.append(
            "what-if ladder"
            + (
                f" (baseline p99 TTFT {base_p99:.4f}s):"
                if base_p99 is not None
                else ":"
            )
        )
        for row in whatif["interventions"]:
            gain = row["delta"]["p99_ttft_s"]
            note = ""
            if "rel_error" in row:
                note = (
                    f"  [resim {row['resim_delta']['p99_ttft_s']:+.4f}s "
                    f"err {row['rel_error']:.0%}"
                    + (
                        "]"
                        if row.get("within_tolerance")
                        else " DIVERGED]"
                    )
                )
            lines.append(
                f"  {row['intervention']['label']:<36s} "
                f"dp99 TTFT {gain:+.4f}s{note}"
            )
    flight = data.get("flight")
    if flight:
        lines.append(
            f"flight recorder: {flight['n_samples']} samples"
            + (
                f" ({flight['evicted']} evicted)"
                if flight.get("evicted")
                else ""
            )
        )
        for lid, kind, util in flight.get("top_links", [])[:5]:
            lines.append(f"  link {lid:4d} [{kind}] peak {util:.1%}")
        flips = flight.get("policy_flips") or []
        lines.append(f"policy flips: {len(flips)}")
        for f in flips[:5]:
            lines.append(
                f"  {f['time']:8.1f}s {f['group']}: "
                f"{f['from']} -> {f['to']}"
            )
    transitions = data.get("transitions") or []
    if transitions:
        lines.append(f"plan transitions: {len(transitions)} events")
        for ev in transitions[:12]:
            plan = ""
            if ev.get("from_plan") or ev.get("to_plan"):
                plan = (
                    f" {ev.get('from_plan', '?')} -> "
                    f"{ev.get('to_plan', '?')}"
                )
            detail = _transition_detail(ev)
            lines.append(
                f"  {ev['time']:8.2f}s {ev['event']}{plan}"
                + (f"  [{detail}]" if detail else "")
            )
        if len(transitions) > 12:
            lines.append(
                f"  ... and {len(transitions) - 12} more"
            )
    return "\n".join(lines) + "\n"


def write_report(
    path: str,
    observer=None,
    serving_metrics=None,
    title: str = "repro serving run",
    meta: dict[str, Any] | None = None,
    whatif: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Build, render and write the HTML report; returns the data dict."""
    data = build_report_data(
        observer=observer,
        serving_metrics=serving_metrics,
        title=title,
        meta=meta,
        whatif=whatif,
    )
    with open(path, "w") as fh:
        fh.write(render_html(data))
    return data


# ---------------------------------------------------------------------------
# sweep reports (scenario matrix runs)
# ---------------------------------------------------------------------------

#: (column header, summary key, format) for the per-cell sweep table.
#: Router/replan columns only render when some cell carries the key.
_SWEEP_ALWAYS = (
    ("finished", "finished", "{:.0f}"),
    ("attainment", "attainment", "{:.1%}"),
    ("p50 TTFT s", "p50_ttft_s", "{:.3f}"),
    ("p99 TTFT s", "p99_ttft_s", "{:.3f}"),
    ("mean TPOT s", "mean_tpot_s", "{:.4f}"),
)
_SWEEP_OPTIONAL = (
    ("router hit", "router_affinity_hit_rate", "{:.2f}"),
    ("KV moved GB", "router_kv_bytes_moved", "{:.2f}"),
    ("replans", "replan_transitions", "{:.0f}"),
    ("failovers", "failovers", "{:.0f}"),
)


def build_sweep_data(
    summaries: list[dict],
    title: str = "scenario sweep",
    axes: dict[str, Any] | None = None,
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Fold per-cell scenario summaries into one sweep-report payload."""
    return {
        "title": title,
        "meta": dict(meta or {}),
        "axes": {k: list(v) for k, v in (axes or {}).items()},
        "cells": list(summaries),
    }


def _sweep_columns(cells: list[dict]) -> list[tuple[str, str, str]]:
    cols = list(_SWEEP_ALWAYS)
    for col in _SWEEP_OPTIONAL:
        if any(col[1] in c for c in cells):
            cols.append(col)
    return cols


def _sweep_cell_value(cell: dict, key: str, fmt: str) -> str:
    if key == "router_affinity_hit_rate" and cell.get(key) is None:
        # Sessionless traces have no follow-up turns to hit or miss.
        return "n/a"
    v = cell.get(key)
    if key == "router_kv_bytes_moved" and v is not None:
        v = _finite(v)
        v = v / 1e9 if v is not None else None
    return _fmt(v, fmt)


def render_sweep_html(data: dict[str, Any]) -> str:
    """Render a sweep payload as one self-contained HTML page."""
    cells = data.get("cells") or []
    cols = _sweep_columns(cells)
    axes = data.get("axes") or {}
    sub_bits = [
        f"{html.escape(str(k))} &isin; "
        f"[{html.escape(', '.join(str(v) for v in vs))}]"
        for k, vs in axes.items()
    ]
    for k, v in (data.get("meta") or {}).items():
        sub_bits.append(f"{html.escape(str(k))}={html.escape(str(v))}")
    header = "".join(
        ["<th>cell</th>"]
        + [f'<th class="num">{html.escape(h)}</th>' for h, _, _ in cols]
    )
    rows = []
    for cell in cells:
        label = str(cell.get("cell") or cell.get("scenario") or "run")
        tds = [f"<td>{html.escape(label)}</td>"] + [
            f'<td class="num">'
            f"{html.escape(_sweep_cell_value(cell, key, fmt))}</td>"
            for _, key, fmt in cols
        ]
        rows.append(f"<tr>{''.join(tds)}</tr>")
    table = (
        f"<table><thead><tr>{header}</tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
        if cells
        else '<p class="empty">no cells ran</p>'
    )
    body = (
        f"<h1>{html.escape(data.get('title', 'scenario sweep'))}</h1>"
        f'<p class="sub">{" &middot; ".join(sub_bits)}</p>'
        f"<h2>cells ({len(cells)})</h2>"
        f"{table}"
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        '<meta name="viewport" content="width=device-width,initial-scale=1">'
        f"<title>{html.escape(data.get('title', 'scenario sweep'))}</title>"
        f"<style>{_CSS}</style></head>"
        f'<body class="viz-root">{body}'
        "<script type=\"application/json\" id=\"sweep-data\">"
        f"{json.dumps(data, default=str)}"
        "</script></body></html>\n"
    )


def render_sweep_text(data: dict[str, Any]) -> str:
    """Terminal-friendly table of the same sweep payload."""
    cells = data.get("cells") or []
    cols = _sweep_columns(cells)
    headers = ["cell"] + [h for h, _, _ in cols]
    table_rows = []
    for cell in cells:
        label = str(cell.get("cell") or cell.get("scenario") or "run")
        table_rows.append(
            [label]
            + [_sweep_cell_value(cell, key, fmt) for _, key, fmt in cols]
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in table_rows))
        if table_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [data.get("title", "scenario sweep")]
    for k, vs in (data.get("axes") or {}).items():
        lines.append(f"  axis {k}: {vs}")
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for r in table_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines) + "\n"


def write_sweep_report(
    path: str,
    summaries: list[dict],
    title: str = "scenario sweep",
    axes: dict[str, Any] | None = None,
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Build, render and write the sweep HTML; returns the data dict."""
    data = build_sweep_data(summaries, title=title, axes=axes, meta=meta)
    with open(path, "w") as fh:
        fh.write(render_sweep_html(data))
    return data
