"""Stdlib logging configuration for the ``repro`` package.

Every module logs through ``logging.getLogger("repro.<module>")`` via
:func:`get_logger`; nothing is emitted until :func:`setup_logging`
attaches a handler (library-friendly: a NullHandler guards the root
package logger). The CLI's ``-v/-vv`` flags map to INFO/DEBUG, default
WARNING.
"""

from __future__ import annotations

import logging
import sys

__all__ = [
    "PACKAGE_LOGGER",
    "get_logger",
    "setup_logging",
    "verbosity_to_level",
]

PACKAGE_LOGGER = "repro"

DEFAULT_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
DEFAULT_DATEFMT = "%H:%M:%S"

# Library default: stay silent unless the application configures logging.
logging.getLogger(PACKAGE_LOGGER).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Logger namespaced under the package root.

    Accepts either a module ``__name__`` (already ``repro.*``) or a bare
    suffix like ``"planner"``.
    """
    if name == PACKAGE_LOGGER or name.startswith(PACKAGE_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{PACKAGE_LOGGER}.{name}")


def verbosity_to_level(verbosity: int) -> int:
    """CLI ``-v`` count -> logging level (0 WARNING, 1 INFO, >=2 DEBUG)."""
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def setup_logging(
    verbosity: int = 0,
    stream=None,
    fmt: str = DEFAULT_FORMAT,
) -> logging.Logger:
    """Attach (or retune) a stream handler on the package logger.

    Idempotent: repeated calls adjust the level of the existing handler
    instead of stacking duplicates, so tests and REPL sessions can call
    it freely.
    """
    logger = logging.getLogger(PACKAGE_LOGGER)
    level = verbosity_to_level(verbosity)
    stream = stream if stream is not None else sys.stderr

    handler = None
    for h in logger.handlers:
        if isinstance(h, logging.StreamHandler) and not isinstance(
            h, logging.NullHandler
        ):
            handler = h
            break
    if handler is None:
        handler = logging.StreamHandler(stream)
        handler.setFormatter(
            logging.Formatter(fmt, datefmt=DEFAULT_DATEFMT)
        )
        logger.addHandler(handler)
    else:
        handler.setStream(stream)
    handler.setLevel(level)
    logger.setLevel(level)
    return logger
