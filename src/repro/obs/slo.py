"""SLO targets, burn-rate evaluation and structured alerting.

The paper's §III-D monitoring agents exist so the fleet can *react*:
"are we meeting the TTFT/TPOT SLAs right now, and should anything
change?" This module answers that question on top of the PR-1
primitives, SRE-style:

* an :class:`SLOTarget` declares a per-request latency bound (TTFT or
  TPOT) together with an attainment *objective* (e.g. 90 % of requests
  under the bound — the paper's evaluation bar);
* an :class:`SLOMonitor` keeps rolling windows of per-request
  conformance in **simulation time** (never wall clock, so observed
  runs stay deterministic) and computes **burn rates** — the speed at
  which the error budget ``1 - objective`` is being consumed;
* alerting uses the multi-window rule from the Google SRE workbook: a
  severity fires only when the burn rate over a long window *and* over
  a short confirmation window (1/12 of the long one) both exceed the
  severity's threshold, so a transient blip neither pages nor does a
  real regression keep paging long after recovery;
* :class:`Alert` records flow through an :class:`AlertSink` that other
  components — the autoscaler, the background-traffic injector, tests
  — subscribe to, turning SLO burn into a feedback signal rather than
  a post-mortem artefact.

Burn rate 1.0 means the budget is consumed exactly at the sustainable
pace; with a 90 % objective the worst possible burn (every request
violating) is ``1 / (1 - 0.9) = 10``, so the default thresholds sit
well below that ceiling.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

__all__ = [
    "SLOTarget",
    "Alert",
    "AlertSink",
    "SLOMonitor",
    "default_slo_targets",
    "PAGE",
    "TICKET",
]

#: Alert severities, highest first.
PAGE = "page"
TICKET = "ticket"

#: Confirmation window = long window / this divisor (SRE workbook uses
#: 12: 1 h long window pairs with a 5 min short window).
SHORT_WINDOW_DIVISOR = 12.0


@dataclass(frozen=True)
class SLOTarget:
    """One declarative latency SLO over finished requests.

    ``metric`` names a per-request latency attribute (``ttft`` or
    ``tpot``); a request is *good* when that latency is at most
    ``threshold_s``. The target is met while at least ``objective`` of
    requests in a window are good.
    """

    metric: str
    threshold_s: float
    objective: float = 0.9
    #: fast (paging) evaluation window, simulation seconds
    fast_window_s: float = 300.0
    #: slow (ticketing) evaluation window, simulation seconds
    slow_window_s: float = 3600.0
    #: burn-rate thresholds per severity
    page_burn: float = 6.0
    ticket_burn: float = 2.0

    def __post_init__(self) -> None:
        if self.threshold_s <= 0:
            raise ValueError(f"threshold_s must be > 0, got {self.threshold_s}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"objective in (0, 1), got {self.objective}")
        if not 0 < self.fast_window_s <= self.slow_window_s:
            raise ValueError(
                "need 0 < fast_window_s <= slow_window_s, got "
                f"{self.fast_window_s}/{self.slow_window_s}"
            )
        if not 0 < self.ticket_burn <= self.page_burn:
            raise ValueError(
                "need 0 < ticket_burn <= page_burn, got "
                f"{self.ticket_burn}/{self.page_burn}"
            )

    @property
    def name(self) -> str:
        """Display name, e.g. ``ttft<=2.5s@90%``."""
        return (
            f"{self.metric}<={self.threshold_s:g}s@{self.objective:.0%}"
        )

    @property
    def error_budget(self) -> float:
        """Tolerated bad fraction ``1 - objective``."""
        return 1.0 - self.objective

    def is_good(self, latency_s: float) -> bool:
        return latency_s <= self.threshold_s


def default_slo_targets(sla, objective: float = 0.9) -> list[SLOTarget]:
    """TTFT + TPOT targets from an :class:`~repro.core.objective.SlaSpec`."""
    return [
        SLOTarget("ttft", sla.ttft, objective=objective),
        SLOTarget("tpot", sla.tpot, objective=objective),
    ]


@dataclass(frozen=True)
class Alert:
    """One burn-rate alert (or its resolution) at a simulation instant."""

    time: float
    slo: str
    metric: str
    severity: str          # PAGE | TICKET
    #: "firing" on the rising edge, "resolved" on the falling edge
    state: str
    burn_long: float
    burn_short: float
    window_s: float
    attainment: float      # over the severity's long window
    n_requests: int        # samples in the long window
    message: str

    @property
    def firing(self) -> bool:
        return self.state == "firing"


class AlertSink:
    """Fan-out target for alerts: keeps the log, notifies subscribers.

    Subscribers are callables taking one :class:`Alert`; the autoscaler
    and the background-traffic injector register theirs so SLO burn
    drives scale-out / burst back-off instead of raw utilisation.
    """

    def __init__(self) -> None:
        self.alerts: list[Alert] = []
        self._subscribers: list[Callable[[Alert], None]] = []

    def subscribe(self, callback: Callable[[Alert], None]) -> None:
        self._subscribers.append(callback)

    def emit(self, alert: Alert) -> None:
        self.alerts.append(alert)
        for cb in self._subscribers:
            cb(alert)

    def firing(self, severity: str | None = None) -> list[Alert]:
        """Alerts whose rising edge has not been resolved yet."""
        open_by_key: dict[tuple[str, str], Alert] = {}
        for a in self.alerts:
            key = (a.slo, a.severity)
            if a.firing:
                open_by_key[key] = a
            else:
                open_by_key.pop(key, None)
        out = list(open_by_key.values())
        if severity is not None:
            out = [a for a in out if a.severity == severity]
        return sorted(out, key=lambda a: a.time)


class _TargetState:
    """Rolling conformance window + alert edge state for one target."""

    __slots__ = ("target", "samples", "active")

    def __init__(self, target: SLOTarget) -> None:
        self.target = target
        #: (time, good) per finished request, pruned to slow_window_s
        self.samples: deque[tuple[float, bool]] = deque()
        #: severity -> currently firing?
        self.active: dict[str, bool] = {PAGE: False, TICKET: False}

    def record(self, ts: float, good: bool) -> None:
        self.samples.append((ts, good))
        self._prune(ts)

    def _prune(self, now: float) -> None:
        horizon = now - self.target.slow_window_s
        while self.samples and self.samples[0][0] < horizon:
            self.samples.popleft()

    def window_stats(self, now: float, window: float) -> tuple[int, int]:
        """(total, bad) over ``[now - window, now]``."""
        lo = now - window
        total = bad = 0
        for ts, good in reversed(self.samples):
            if ts < lo:
                break
            total += 1
            if not good:
                bad += 1
        return total, bad

    def burn_rate(self, now: float, window: float) -> float:
        """Error-budget consumption speed over the window (0 if empty)."""
        total, bad = self.window_stats(now, window)
        if total == 0:
            return 0.0
        return (bad / total) / self.target.error_budget


class SLOMonitor:
    """Evaluates burn rates on controller ticks; emits edge alerts.

    ``record_request`` is called per finished request (the observer's
    ``request_finished`` hook); ``evaluate`` runs on the monitoring
    cadence and returns the alerts that *changed state* this tick.
    """

    def __init__(
        self,
        targets: Iterable[SLOTarget],
        sink: AlertSink | None = None,
        min_samples: int = 5,
    ) -> None:
        targets = list(targets)
        if not targets:
            raise ValueError("need at least one SLOTarget")
        names = [t.name for t in targets]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO target names: {names}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.sink = sink or AlertSink()
        self.min_samples = min_samples
        self._states = [_TargetState(t) for t in targets]

    @property
    def targets(self) -> list[SLOTarget]:
        return [s.target for s in self._states]

    # -- recording -----------------------------------------------------------

    def record_request(self, ts: float, req) -> None:
        """Classify one finished request against every target."""
        for st in self._states:
            latency = getattr(req, st.target.metric)
            st.record(ts, st.target.is_good(latency))

    def observe(self, ts: float, metric: str, latency_s: float) -> None:
        """Record one raw latency sample for targets on ``metric``."""
        for st in self._states:
            if st.target.metric == metric:
                st.record(ts, st.target.is_good(latency_s))

    # -- evaluation ----------------------------------------------------------

    def burn_rates(self, now: float) -> dict[str, tuple[float, float]]:
        """``{target name: (fast-window burn, slow-window burn)}``."""
        return {
            st.target.name: (
                st.burn_rate(now, st.target.fast_window_s),
                st.burn_rate(now, st.target.slow_window_s),
            )
            for st in self._states
        }

    def attainment(self, now: float, name: str, window: float) -> float:
        """Good fraction over a window for the named target (nan if empty)."""
        for st in self._states:
            if st.target.name == name:
                total, bad = st.window_stats(now, window)
                if total == 0:
                    return float("nan")
                return 1.0 - bad / total
        raise KeyError(name)

    def _severity_condition(
        self, st: _TargetState, now: float, severity: str
    ) -> tuple[bool, float, float, float, int]:
        """(met, burn_long, burn_short, window, n) for one severity."""
        t = st.target
        if severity == PAGE:
            window, threshold = t.fast_window_s, t.page_burn
        else:
            window, threshold = t.slow_window_s, t.ticket_burn
        short = window / SHORT_WINDOW_DIVISOR
        burn_long = st.burn_rate(now, window)
        burn_short = st.burn_rate(now, short)
        total, _ = st.window_stats(now, window)
        met = (
            total >= self.min_samples
            and burn_long >= threshold
            and burn_short >= threshold
        )
        return met, burn_long, burn_short, window, total

    def evaluate(self, now: float) -> list[Alert]:
        """Run the multi-window rule; emit and return edge alerts."""
        edges: list[Alert] = []
        for st in self._states:
            st._prune(now)
            for severity in (PAGE, TICKET):
                met, b_long, b_short, window, total = (
                    self._severity_condition(st, now, severity)
                )
                was = st.active[severity]
                if met == was:
                    continue
                st.active[severity] = met
                t = st.target
                attain = (
                    self.attainment(now, t.name, window)
                    if total
                    else float("nan")
                )
                state = "firing" if met else "resolved"
                verb = (
                    "burning error budget"
                    if met
                    else "back within budget"
                )
                alert = Alert(
                    time=now,
                    slo=t.name,
                    metric=t.metric,
                    severity=severity,
                    state=state,
                    burn_long=b_long,
                    burn_short=b_short,
                    window_s=window,
                    attainment=attain,
                    n_requests=total,
                    message=(
                        f"[{severity}] {t.name} {verb}: "
                        f"burn {b_long:.1f}x over {window:g}s "
                        f"({b_short:.1f}x short-window), "
                        f"attainment {attain:.1%} over {total} requests"
                    ),
                )
                edges.append(alert)
                self.sink.emit(alert)
        return edges

    # -- export --------------------------------------------------------------

    def snapshot(self, now: float) -> dict:
        """JSON-serialisable view for the report renderer."""
        targets = []
        for st in self._states:
            t = st.target
            fast_total, fast_bad = st.window_stats(now, t.fast_window_s)
            slow_total, slow_bad = st.window_stats(now, t.slow_window_s)
            targets.append(
                {
                    "name": t.name,
                    "metric": t.metric,
                    "threshold_s": t.threshold_s,
                    "objective": t.objective,
                    "burn_fast": st.burn_rate(now, t.fast_window_s),
                    "burn_slow": st.burn_rate(now, t.slow_window_s),
                    "attainment_fast": (
                        1.0 - fast_bad / fast_total if fast_total else None
                    ),
                    "attainment_slow": (
                        1.0 - slow_bad / slow_total if slow_total else None
                    ),
                    "n_fast": fast_total,
                    "n_slow": slow_total,
                    "paging": st.active[PAGE],
                    "ticketing": st.active[TICKET],
                }
            )
        return {
            "time": now,
            "targets": targets,
            "alerts": [alert_to_dict(a) for a in self.sink.alerts],
        }


def alert_to_dict(a: Alert) -> dict:
    """Flatten an :class:`Alert` for JSON export."""
    return {
        "time": a.time,
        "slo": a.slo,
        "metric": a.metric,
        "severity": a.severity,
        "state": a.state,
        "burn_long": a.burn_long,
        "burn_short": a.burn_short,
        "window_s": a.window_s,
        "attainment": a.attainment,
        "n_requests": a.n_requests,
        "message": a.message,
    }
