"""Observability: tracing, metrics registry, profiling, logging.

Three pillars threaded through the simulator and schedulers by a single
:class:`Observer` handle (default :class:`NullObserver` — zero overhead
when disabled):

* :mod:`repro.obs.trace` — request/batch/all-reduce spans exportable as
  JSONL or Chrome ``chrome://tracing`` JSON;
* :mod:`repro.obs.metrics` — Prometheus-style counters / gauges /
  histograms with labels and a text/JSON exposition;
* :mod:`repro.obs.profile` — wall-clock phase timers for the offline
  planner (candidate enumeration, grouping, perturbation, objective);
* :mod:`repro.obs.logging_config` — stdlib logging setup for the CLI's
  ``-v/-vv`` flags.
"""

from repro.obs.logging_config import (
    get_logger,
    setup_logging,
    verbosity_to_level,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_latency_buckets,
)
from repro.obs.observer import NULL_OBSERVER, NullObserver, Observer
from repro.obs.profile import (
    NULL_PROFILER,
    NullProfiler,
    PhaseProfiler,
    PhaseStat,
)
from repro.obs.trace import SpanRecord, TraceRecorder

__all__ = [
    "get_logger",
    "setup_logging",
    "verbosity_to_level",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_latency_buckets",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "NULL_PROFILER",
    "NullProfiler",
    "PhaseProfiler",
    "PhaseStat",
    "SpanRecord",
    "TraceRecorder",
]
