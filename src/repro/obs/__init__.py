"""Observability: tracing, metrics registry, profiling, logging.

Three pillars threaded through the simulator and schedulers by a single
:class:`Observer` handle (default :class:`NullObserver` — zero overhead
when disabled):

* :mod:`repro.obs.trace` — request/batch/all-reduce spans exportable as
  JSONL or Chrome ``chrome://tracing`` JSON;
* :mod:`repro.obs.metrics` — Prometheus-style counters / gauges /
  histograms with labels and a text/JSON exposition;
* :mod:`repro.obs.profile` — wall-clock phase timers for the offline
  planner (candidate enumeration, grouping, perturbation, objective);
* :mod:`repro.obs.logging_config` — stdlib logging setup for the CLI's
  ``-v/-vv`` flags;
* :mod:`repro.obs.slo` — declarative SLO targets with SRE-style
  multi-window burn-rate alerting through an :class:`AlertSink`;
* :mod:`repro.obs.recorder` — ring-buffered simulation flight recorder
  sampled on controller ticks, exported as JSONL;
* :mod:`repro.obs.report` — folds recorder + metrics + alerts into one
  self-contained HTML dashboard and a plain-text summary;
* :mod:`repro.obs.attribution` — per-request critical-path attribution:
  TTFT/TPOT decomposed into named components (queue wait, allreduce by
  policy with the congested link, KV retry inflation, ...), aggregated
  into fleet p50/p99 budgets and CLI waterfalls;
* :mod:`repro.obs.selfprof` — host wall-clock self-profiling of the
  simulator's own hot path (requests-simulated/sec, per-event-tag
  handler times) — the BENCH_engine measurement harness;
* :mod:`repro.obs.whatif` — counterfactual bottleneck ranking: predicts
  how p50/p99 TTFT, TPOT and throughput would move if one resource
  (a link class, INA slots, prefill/decode compute, the KV path, the
  scheduler tick) were k× faster, analytically from attribution
  timelines and validated by perturbed re-simulation.
"""

from repro.obs.attribution import (
    CRITICAL_PATH_COMPONENTS,
    AttributionCollector,
    RequestAttribution,
    RequestTimeline,
    render_waterfall,
    render_waterfalls,
)

from repro.obs.logging_config import (
    get_logger,
    setup_logging,
    verbosity_to_level,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_latency_buckets,
)
from repro.obs.observer import NULL_OBSERVER, NullObserver, Observer
from repro.obs.profile import (
    NULL_PROFILER,
    NullProfiler,
    PhaseProfiler,
    PhaseStat,
)
from repro.obs.recorder import FlightRecorder, FlightSample
from repro.obs.report import (
    build_report_data,
    build_sweep_data,
    render_html,
    render_sweep_html,
    render_sweep_text,
    render_text,
    write_report,
    write_sweep_report,
)
from repro.obs.selfprof import SelfProfiler, SelfProfilingObserver
from repro.obs.slo import (
    Alert,
    AlertSink,
    SLOMonitor,
    SLOTarget,
    default_slo_targets,
)
from repro.obs.trace import SpanRecord, TraceRecorder
from repro.obs.whatif import (
    DEFAULT_CATALOG,
    DEFAULT_TOLERANCE,
    Intervention,
    RunStats,
    WhatIfEstimate,
    WhatIfProfiler,
    WhatIfResult,
    render_ladder,
)

__all__ = [
    "Alert",
    "AlertSink",
    "AttributionCollector",
    "CRITICAL_PATH_COMPONENTS",
    "RequestAttribution",
    "RequestTimeline",
    "render_waterfall",
    "render_waterfalls",
    "SelfProfiler",
    "SelfProfilingObserver",
    "SLOMonitor",
    "SLOTarget",
    "default_slo_targets",
    "FlightRecorder",
    "FlightSample",
    "build_report_data",
    "build_sweep_data",
    "render_html",
    "render_sweep_html",
    "render_sweep_text",
    "render_text",
    "write_report",
    "write_sweep_report",
    "get_logger",
    "setup_logging",
    "verbosity_to_level",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_latency_buckets",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "NULL_PROFILER",
    "NullProfiler",
    "PhaseProfiler",
    "PhaseStat",
    "SpanRecord",
    "TraceRecorder",
    "DEFAULT_CATALOG",
    "DEFAULT_TOLERANCE",
    "Intervention",
    "RunStats",
    "WhatIfEstimate",
    "WhatIfProfiler",
    "WhatIfResult",
    "render_ladder",
]
