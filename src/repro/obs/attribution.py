"""Per-request critical-path attribution.

The observability layer of PRs 1-2 answers *what* the TTFT/TPOT
percentiles are; this module answers *where the time went* for each
request. An :class:`AttributionCollector` (attached to an
:class:`~repro.obs.observer.Observer` via ``attribution=``) causally
links the engine's per-request hooks — arrival, prefill/decode passes,
all-reduce slices, KV transfers, fault retries/requeues — into one
:class:`RequestTimeline` per ``request_id``, then, on finish, folds the
timeline into a :class:`RequestAttribution`: the request's end-to-end
latency decomposed along its critical path into named components.

The decomposition telescopes **exactly**: every boundary is a recorded
simulation timestamp and every compute share is derived by subtracting
the recorded communication share from its interval, so

``sum(components) == (finish - arrival) == TTFT + decode latency``

holds to float rounding regardless of how the individual estimators
price their pieces (the acceptance property of ISSUE 6).

Components
----------
``queue_wait``        arrival -> first prefill admission
``fault_redo``        progress lost to a server failure: first prefill
                      admission -> the *final* (successful) admission
``prefill_compute``   final prefill pass minus its sync share
``prefill_allreduce`` the pass's communication share (tensor-parallel
                      all-reduce slices + pipeline sync), with per-policy
                      detail naming the congested link/switch each group
                      priced through
``kv_transfer``       the final, completed prefill->decode KV handoff
``kv_retry_backoff``  retry/backoff inflation while decode was
                      unreachable (plus any cancelled partial transfers)
``decode_wait``       KV landed -> admitted into the decode batch
``decode_compute``    decode iterations minus their sync share
``decode_allreduce``  accumulated decode-pass communication share

The congested-link detail comes from the engine's per-group decision
records: the :class:`~repro.network.linkstate.LinkLoadTracker`
utilisation argmax over the links the chosen
:class:`~repro.comm.scheme.CollectiveScheme` policy's ``link_footprint``
occupies — i.e. the contention the policy actually priced against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.request import RequestState

__all__ = [
    "CRITICAL_PATH_COMPONENTS",
    "AllreduceShare",
    "RequestTimeline",
    "RequestAttribution",
    "AttributionCollector",
    "render_waterfall",
    "render_waterfalls",
]

#: Canonical component order — waterfalls, report bars and the
#: ``cp_*`` summary keys all follow it.
CRITICAL_PATH_COMPONENTS: tuple[str, ...] = (
    "queue_wait",
    "fault_redo",
    "prefill_compute",
    "prefill_allreduce",
    "kv_transfer",
    "kv_retry_backoff",
    "decode_wait",
    "decode_compute",
    "decode_allreduce",
)


@dataclass
class AllreduceShare:
    """One policy's accumulated sync time within a phase, plus the most
    congested link it priced through (utilisation argmax over the
    policy's link footprint at decision time)."""

    policy: str
    phase: str
    seconds: float = 0.0
    count: int = 0
    bottleneck_link: int | None = None
    bottleneck_kind: str = ""
    bottleneck_util: float = 0.0
    switch: int | None = None

    def merge(
        self,
        dur: float,
        link: int | None,
        kind: str,
        util: float,
        switch: int | None,
    ) -> None:
        self.seconds += dur
        self.count += 1
        if link is not None and util >= self.bottleneck_util:
            self.bottleneck_link = link
            self.bottleneck_kind = kind
            self.bottleneck_util = util
        if switch is not None:
            self.switch = switch

    def to_dict(self) -> dict:
        """JSON-ready form (round-trips via :meth:`from_dict`)."""
        return {
            "policy": self.policy,
            "phase": self.phase,
            "seconds": self.seconds,
            "count": self.count,
            "bottleneck_link": self.bottleneck_link,
            "bottleneck_kind": self.bottleneck_kind,
            "bottleneck_util": self.bottleneck_util,
            "switch": self.switch,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AllreduceShare":
        return cls(**d)

    def describe(self) -> str:
        """``policy via link 34 [ethernet] (peak util 87%)``."""
        where = ""
        if self.switch is not None:
            where = f" via switch {self.switch}"
        if self.bottleneck_link is not None:
            where += (
                f" via link {self.bottleneck_link}"
                f" [{self.bottleneck_kind}]"
                f" (peak util {self.bottleneck_util:.0%})"
            )
        return f"policy {self.policy}{where}"


@dataclass
class RequestTimeline:
    """Live accumulator for one in-flight request's observer events."""

    request_id: int
    arrival: float
    #: first prefill admission ever (survives requeues)
    first_prefill_start: float = field(default=float("nan"))
    #: communication share of the final prefill pass
    prefill_comm: float = 0.0
    #: duration of the latest (final) KV transfer attempt
    kv_span: float = 0.0
    #: accumulated communication share over decode iterations
    decode_comm: float = 0.0
    decode_iters: int = 0
    kv_retries: int = 0
    requeues: int = 0
    #: ``(phase, policy) -> AllreduceShare`` sync detail
    allreduce: dict[tuple[str, str], AllreduceShare] = field(
        default_factory=dict
    )

    def on_prefill(self, start: float, t_comm: float) -> None:
        if math.isnan(self.first_prefill_start):
            self.first_prefill_start = start
        self.prefill_comm = t_comm

    def on_allreduce(
        self,
        phase: str,
        policy: str,
        dur: float,
        link: int | None,
        kind: str,
        util: float,
        switch: int | None,
    ) -> None:
        key = (phase, policy)
        share = self.allreduce.get(key)
        if share is None:
            share = self.allreduce[key] = AllreduceShare(policy, phase)
        share.merge(dur, link, kind, util, switch)

    def on_kv_span(self, dur: float) -> None:
        # Latest wins: a transfer cancelled by a failover is superseded
        # by the retried one; the lost partial time lands in the
        # kv_retry_backoff component, not in kv_transfer.
        self.kv_span = dur

    def on_decode(self, t_comm: float) -> None:
        self.decode_comm += t_comm
        self.decode_iters += 1

    def on_requeued(self) -> None:
        """A failure wiped this request's progress: redo from prefill.

        Per-attempt accumulators reset so the fresh attempt is measured
        cleanly; the lost wall-time shows up as ``fault_redo`` because
        ``first_prefill_start`` is retained.
        """
        self.requeues += 1
        self.prefill_comm = 0.0
        self.kv_span = 0.0
        self.decode_comm = 0.0
        self.decode_iters = 0
        self.allreduce.clear()


def _pos(x: float) -> float:
    """Clamp float-rounding residue (~1e-16 of the timestamp) to zero."""
    return x if x > 0.0 else 0.0


@dataclass(frozen=True)
class RequestAttribution:
    """One finished request's critical-path decomposition."""

    request_id: int
    arrival: float
    ttft: float
    decode_latency: float
    components: dict[str, float]
    allreduce: tuple[AllreduceShare, ...]
    requeues: int
    kv_retries: int
    decode_iters: int

    @property
    def total(self) -> float:
        """End-to-end latency — equals ``sum(components)`` by design."""
        return self.ttft + self.decode_latency

    def to_dict(self) -> dict:
        """JSON-ready form (round-trips via :meth:`from_dict`)."""
        return {
            "request_id": self.request_id,
            "arrival": self.arrival,
            "ttft": self.ttft,
            "decode_latency": self.decode_latency,
            "components": dict(self.components),
            "allreduce": [s.to_dict() for s in self.allreduce],
            "requeues": self.requeues,
            "kv_retries": self.kv_retries,
            "decode_iters": self.decode_iters,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RequestAttribution":
        return cls(
            request_id=d["request_id"],
            arrival=d["arrival"],
            ttft=d["ttft"],
            decode_latency=d["decode_latency"],
            components=dict(d["components"]),
            allreduce=tuple(
                AllreduceShare.from_dict(s) for s in d["allreduce"]
            ),
            requeues=d["requeues"],
            kv_retries=d["kv_retries"],
            decode_iters=d["decode_iters"],
        )

    @property
    def dominant(self) -> tuple[str, float]:
        """``(component name, seconds)`` of the largest component."""
        name = max(self.components, key=self.components.__getitem__)
        return name, self.components[name]

    def dominant_detail(self) -> str:
        """Human detail for the dominant component: for all-reduce
        components the top policy and the congested link/switch it
        priced through; for others the phase boundary semantics."""
        name, _ = self.dominant
        if name in ("prefill_allreduce", "decode_allreduce"):
            phase = name.split("_", 1)[0]
            shares = [s for s in self.allreduce if s.phase == phase]
            if shares:
                top = max(shares, key=lambda s: s.seconds)
                return f"{top.describe()}, {top.seconds:.4f}s synced"
        if name == "kv_retry_backoff":
            return f"{self.kv_retries} retries while decode unreachable"
        if name == "fault_redo":
            return f"{self.requeues} requeue(s) after server failure"
        if name == "decode_compute":
            return f"{self.decode_iters} decode iterations"
        return ""


class AttributionCollector:
    """Links observer events into per-request critical-path budgets.

    Attach via ``Observer(attribution=AttributionCollector())``. The
    default observer keeps ``attribution=None`` so existing observed
    runs (and their summaries) stay byte-identical.
    """

    def __init__(self) -> None:
        #: in-flight timelines keyed by request_id
        self.live: dict[int, RequestTimeline] = {}
        #: finished attributions, in finish order
        self.finished: list[RequestAttribution] = []

    # -- event intake (called by Observer hooks) ------------------------

    def on_arrival(self, ts: float, req: "RequestState") -> None:
        self.live[req.request_id] = RequestTimeline(
            request_id=req.request_id, arrival=ts
        )

    def on_dropped(self, ts: float, req: "RequestState") -> None:
        self.live.pop(req.request_id, None)

    def on_prefill(
        self, start: float, request_ids: tuple[int, ...], t_comm: float
    ) -> None:
        for rid in request_ids:
            tl = self.live.get(rid)
            if tl is not None:
                tl.on_prefill(start, t_comm)

    def on_allreduce(
        self,
        phase: str,
        request_ids: tuple[int, ...],
        policy: str,
        dur: float,
        bottleneck_link: int | None,
        bottleneck_kind: str,
        bottleneck_util: float,
        switch: int | None,
    ) -> None:
        for rid in request_ids:
            tl = self.live.get(rid)
            if tl is not None:
                tl.on_allreduce(
                    phase,
                    policy,
                    dur,
                    bottleneck_link,
                    bottleneck_kind,
                    bottleneck_util,
                    switch,
                )

    def on_kv_span(
        self, dur: float, request_ids: tuple[int, ...]
    ) -> None:
        for rid in request_ids:
            tl = self.live.get(rid)
            if tl is not None:
                tl.on_kv_span(dur)

    def on_kv_retry(self, request_ids: tuple[int, ...]) -> None:
        for rid in request_ids:
            tl = self.live.get(rid)
            if tl is not None:
                tl.kv_retries += 1

    def on_decode(
        self, request_ids: tuple[int, ...], t_comm: float
    ) -> None:
        for rid in request_ids:
            tl = self.live.get(rid)
            if tl is not None:
                tl.on_decode(t_comm)

    def on_requeued(self, request_ids: tuple[int, ...]) -> None:
        for rid in request_ids:
            tl = self.live.get(rid)
            if tl is not None:
                tl.on_requeued()

    # -- finalisation ----------------------------------------------------

    def on_finished(self, ts: float, req: "RequestState") -> None:
        tl = self.live.pop(req.request_id, None)
        if tl is None:
            return
        first_start = tl.first_prefill_start
        if math.isnan(first_start):  # pragma: no cover - defensive
            first_start = req.prefill_start
        prefill_iv = req.first_token_time - req.prefill_start
        kv_iv = req.kv_done_time - req.first_token_time
        decode_iv = req.finish_time - req.decode_start
        components = {
            "queue_wait": _pos(first_start - tl.arrival),
            "fault_redo": _pos(req.prefill_start - first_start),
            "prefill_compute": _pos(prefill_iv - tl.prefill_comm),
            "prefill_allreduce": _pos(min(tl.prefill_comm, prefill_iv)),
            "kv_transfer": _pos(min(tl.kv_span, kv_iv)),
            "kv_retry_backoff": _pos(kv_iv - tl.kv_span),
            "decode_wait": _pos(req.decode_start - req.kv_done_time),
            "decode_compute": _pos(decode_iv - tl.decode_comm),
            "decode_allreduce": _pos(min(tl.decode_comm, decode_iv)),
        }
        self.finished.append(
            RequestAttribution(
                request_id=req.request_id,
                arrival=tl.arrival,
                ttft=req.first_token_time - tl.arrival,
                decode_latency=req.finish_time - req.first_token_time,
                components=components,
                allreduce=tuple(
                    sorted(
                        tl.allreduce.values(),
                        key=lambda s: s.seconds,
                        reverse=True,
                    )
                ),
                requeues=tl.requeues,
                kv_retries=tl.kv_retries,
                decode_iters=tl.decode_iters,
            )
        )

    # -- fleet reductions ------------------------------------------------

    def component_matrix(self) -> dict[str, np.ndarray]:
        """``{component: per-request seconds}`` over finished requests."""
        return {
            name: np.array(
                [a.components[name] for a in self.finished]
            )
            for name in CRITICAL_PATH_COMPONENTS
        }

    def budget(self) -> dict[str, dict[str, float]]:
        """Fleet-wide per-component time budgets.

        ``{component: {"mean": s, "p50": s, "p99": s, "share": frac}}``
        where ``share`` is the component's fraction of total attributed
        time — the stacked-bar weights of the report.
        """
        if not self.finished:
            return {}
        mat = self.component_matrix()
        grand = sum(float(v.sum()) for v in mat.values())
        out: dict[str, dict[str, float]] = {}
        for name in CRITICAL_PATH_COMPONENTS:
            v = mat[name]
            out[name] = {
                "mean": float(v.mean()),
                "p50": float(np.percentile(v, 50)),
                "p99": float(np.percentile(v, 99)),
                "share": float(v.sum()) / grand if grand > 0 else 0.0,
            }
        return out

    def fleet_summary(self) -> dict[str, float]:
        """Flat ``cp_*`` keys merged into ``ServingMetrics.summary()``."""
        out: dict[str, float] = {
            "cp_requests": float(len(self.finished))
        }
        for name, stats in self.budget().items():
            out[f"cp_{name}_p50_s"] = stats["p50"]
            out[f"cp_{name}_p99_s"] = stats["p99"]
        return out

    def slowest(self, k: int = 5) -> list[RequestAttribution]:
        """The ``k`` worst requests by end-to-end latency."""
        return sorted(
            self.finished, key=lambda a: a.total, reverse=True
        )[:k]

    # -- persistence -----------------------------------------------------

    def to_payload(self) -> dict:
        """Full JSON-ready dump: every finished attribution plus the
        fleet budget. ``python -m repro explain --from-dir`` and the
        what-if profiler rebuild a collector from this via
        :meth:`from_payload`."""
        return {
            "n_requests": len(self.finished),
            "budget": self.budget(),
            "requests": [a.to_dict() for a in self.finished],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "AttributionCollector":
        """Rebuild a (finished-only) collector from :meth:`to_payload`
        output. Raises ``KeyError`` on dumps that predate per-request
        detail (callers degrade gracefully)."""
        out = cls()
        out.finished = [
            RequestAttribution.from_dict(d) for d in payload["requests"]
        ]
        return out


# ----------------------------------------------------------------------
# text rendering (CLI `explain`)
# ----------------------------------------------------------------------

_BAR_WIDTH = 32

#: Components below this are float-rounding residue of the exact
#: telescoping decomposition, not real time — renderers skip them.
_DISPLAY_EPS_S = 1e-6


def render_waterfall(attr: RequestAttribution) -> str:
    """One request's critical-path waterfall as aligned text."""
    total = attr.total
    flags = []
    if attr.requeues:
        flags.append(f"{attr.requeues} requeue(s)")
    if attr.kv_retries:
        flags.append(f"{attr.kv_retries} kv retries")
    suffix = f"   [{', '.join(flags)}]" if flags else ""
    lines = [
        f"request {attr.request_id}  total {total:.4f}s = "
        f"TTFT {attr.ttft:.4f}s + decode {attr.decode_latency:.4f}s"
        f"{suffix}"
    ]
    for name in CRITICAL_PATH_COMPONENTS:
        sec = attr.components[name]
        if sec < _DISPLAY_EPS_S:
            continue
        frac = sec / total if total > 0 else 0.0
        bar = "#" * max(1, round(frac * _BAR_WIDTH))
        lines.append(
            f"  {name:<18s} {sec:9.4f}s {frac:6.1%} |{bar}"
        )
    dom_name, dom_sec = attr.dominant
    detail = attr.dominant_detail()
    detail = f" — {detail}" if detail else ""
    lines.append(
        f"  dominant: {dom_name} ({dom_sec:.4f}s,"
        f" {dom_sec / total if total > 0 else 0.0:.1%}){detail}"
    )
    if attr.allreduce:
        top = attr.allreduce[0]
        lines.append(
            f"  comm path: {top.describe()} — {top.seconds:.4f}s "
            f"over {top.count} pass(es)"
        )
    return "\n".join(lines)


def render_waterfalls(
    collector: AttributionCollector, slowest: int = 5
) -> str:
    """Fleet budget table + waterfalls for the ``slowest`` K requests."""
    if not collector.finished:
        return "no finished requests to attribute"
    lines = [
        f"critical-path budget over {len(collector.finished)} "
        "finished requests:",
        f"  {'component':<18s} {'p50':>10s} {'p99':>10s} {'share':>7s}",
    ]
    for name, stats in collector.budget().items():
        if stats["p99"] < _DISPLAY_EPS_S:
            continue
        lines.append(
            f"  {name:<18s} {stats['p50']:9.4f}s {stats['p99']:9.4f}s "
            f"{stats['share']:6.1%}"
        )
    lines.append("")
    lines.append(f"slowest {slowest} requests:")
    for attr in collector.slowest(slowest):
        lines.append("")
        lines.append(render_waterfall(attr))
    return "\n".join(lines)
