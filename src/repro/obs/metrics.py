"""Prometheus-style metrics registry: counters, gauges, histograms.

The paper's control centre aggregates DCGM and switch hardware counters
into a live cluster view (§III-D, §IV); production serving stacks expose
the same signals as a Prometheus scrape surface. This module provides
that surface for the simulator — stdlib + numpy only, no client library:

* :class:`Counter` — monotonically increasing, labelled;
* :class:`Gauge` — last-set value, labelled;
* :class:`Histogram` — cumulative-bucket histogram with quantile
  estimation, so TTFT/TPOT distributions can be *streamed* as requests
  finish instead of reduced only at the end of a run;
* :class:`MetricsRegistry` — owns the instruments and renders a
  JSON snapshot or a text exposition.

Label values are passed as keyword arguments::

    reg = MetricsRegistry()
    sel = reg.counter("policy_selections_total", "per-policy decisions")
    sel.inc(policy="hybrid-ina@12", group="0-1-2-3")
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_latency_buckets",
]

#: A labelset as stored internally: sorted (key, value) pairs.
LabelKey = tuple[tuple[str, str], ...]


def _labelkey(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _labelstr(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


def default_latency_buckets() -> tuple[float, ...]:
    """Geometric bucket ladder covering 0.1 ms .. ~2 min latencies.

    Tight enough that a histogram quantile lands within one bucket of
    the exact :func:`numpy.percentile` over the same samples (the
    acceptance bar for streaming TTFT/TPOT against
    :class:`~repro.serving.metrics.ServingMetrics`).
    """
    buckets = []
    b = 1e-4
    while b < 150.0:
        buckets.append(round(b, 10))
        b *= 1.45
    return tuple(buckets)


@dataclass
class _Instrument:
    name: str
    help: str
    kind: str = field(default="", init=False)

    def _key(self, labels: dict[str, str]) -> LabelKey:
        return _labelkey(labels)


@dataclass
class Counter(_Instrument):
    """Monotonically increasing counter with labels."""

    _values: dict[LabelKey, float] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        self.kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        """Sum over every labelset."""
        return sum(self._values.values())

    def collect(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "values": [
                {"labels": dict(k), "value": v}
                for k, v in sorted(self._values.items())
            ],
        }

    def render(self) -> list[str]:
        return [
            f"{self.name}{_labelstr(k)} {v:g}"
            for k, v in sorted(self._values.items())
        ]


@dataclass
class Gauge(_Instrument):
    """Last-observed value with labels (link utilisation, KV occupancy)."""

    _values: dict[LabelKey, float] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        self.kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        self._values[self._key(labels)] = float(value)

    def value(self, **labels: str) -> float:
        return self._values.get(self._key(labels), float("nan"))

    def collect(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "values": [
                {"labels": dict(k), "value": v}
                for k, v in sorted(self._values.items())
            ],
        }

    def render(self) -> list[str]:
        return [
            f"{self.name}{_labelstr(k)} {v:g}"
            for k, v in sorted(self._values.items())
        ]


class _HistogramChild:
    """Bucket counts for one labelset."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # final slot is +Inf
        self.sum = 0.0
        self.count = 0


@dataclass
class Histogram(_Instrument):
    """Fixed-bucket histogram (cumulative exposition, like Prometheus).

    ``buckets`` are upper bounds (le); a final +Inf bucket is implicit.
    """

    buckets: tuple[float, ...] = field(default_factory=default_latency_buckets)
    _children: dict[LabelKey, _HistogramChild] = field(
        default_factory=dict, init=False
    )

    def __post_init__(self) -> None:
        self.kind = "histogram"
        bs = tuple(float(b) for b in self.buckets)
        if not bs or list(bs) != sorted(bs) or len(set(bs)) != len(bs):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.buckets = bs

    def _child(self, labels: dict[str, str]) -> _HistogramChild:
        key = self._key(labels)
        child = self._children.get(key)
        if child is None:
            child = _HistogramChild(len(self.buckets))
            self._children[key] = child
        return child

    def observe(self, value: float, **labels: str) -> None:
        child = self._child(labels)
        # First bucket whose upper bound is >= value (bisect-free: the
        # ladders here are short and observe() is not the hot path).
        idx = len(self.buckets)
        for i, ub in enumerate(self.buckets):
            if value <= ub:
                idx = i
                break
        child.counts[idx] += 1
        child.sum += value
        child.count += 1

    def count(self, **labels: str) -> int:
        child = self._children.get(self._key(labels))
        return child.count if child else 0

    def sum(self, **labels: str) -> float:
        child = self._children.get(self._key(labels))
        return child.sum if child else 0.0

    def mean(self, **labels: str) -> float:
        child = self._children.get(self._key(labels))
        if not child or child.count == 0:
            return float("nan")
        return child.sum / child.count

    def quantile(self, q: float, **labels: str) -> float:
        """Estimated ``q``-quantile by linear interpolation in-bucket.

        The estimate is exact to within the width of the bucket holding
        the quantile — the guarantee the integration tests assert
        against :mod:`repro.serving.metrics` reductions.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        child = self._children.get(self._key(labels))
        if child is None or child.count == 0:
            return float("nan")
        rank = q * child.count
        cum = 0
        for i, c in enumerate(child.counts):
            if c == 0:
                continue
            prev_cum = cum
            cum += c
            if cum >= rank:
                lo = 0.0 if i == 0 else self.buckets[i - 1]
                hi = (
                    self.buckets[i]
                    if i < len(self.buckets)
                    else max(lo, child.sum / child.count)
                )
                frac = (rank - prev_cum) / c if c else 0.0
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
        return self.buckets[-1]

    def bucket_bounds(self, value: float) -> tuple[float, float]:
        """(lower, upper) bounds of the bucket holding ``value``."""
        lo = 0.0
        for ub in self.buckets:
            if value <= ub:
                return lo, ub
            lo = ub
        return lo, math.inf

    def collect(self) -> dict:
        out = []
        for key, child in sorted(self._children.items()):
            cum = 0
            cum_buckets = []
            for i, c in enumerate(child.counts):
                cum += c
                le = self.buckets[i] if i < len(self.buckets) else "+Inf"
                cum_buckets.append({"le": le, "count": cum})
            out.append(
                {
                    "labels": dict(key),
                    "count": child.count,
                    "sum": child.sum,
                    "buckets": cum_buckets,
                    "quantiles": {
                        "p50": self.quantile(0.50, **dict(key)),
                        "p90": self.quantile(0.90, **dict(key)),
                        "p99": self.quantile(0.99, **dict(key)),
                    },
                }
            )
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "values": out,
        }

    def render(self) -> list[str]:
        lines = []
        for key, child in sorted(self._children.items()):
            cum = 0
            for i, c in enumerate(child.counts):
                cum += c
                le = (
                    f"{self.buckets[i]:g}"
                    if i < len(self.buckets)
                    else "+Inf"
                )
                lk = _labelkey({**dict(key), "le": le})
                lines.append(f"{self.name}_bucket{_labelstr(lk)} {cum}")
            lines.append(f"{self.name}_sum{_labelstr(key)} {child.sum:g}")
            lines.append(f"{self.name}_count{_labelstr(key)} {child.count}")
        return lines


class MetricsRegistry:
    """Owns every instrument; renders snapshots and text exposition."""

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}

    def _register(self, inst: _Instrument) -> _Instrument:
        existing = self._instruments.get(inst.name)
        if existing is not None:
            if type(existing) is not type(inst):
                raise ValueError(
                    f"metric {inst.name!r} re-registered with a "
                    f"different type"
                )
            return existing
        self._instruments[inst.name] = inst
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge(name, help))

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        if buckets is None:
            return self._register(Histogram(name, help))
        return self._register(Histogram(name, help, buckets=buckets))

    def get(self, name: str) -> _Instrument | None:
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def snapshot(self) -> dict:
        """JSON-serialisable dump of every instrument."""
        return {
            "metrics": [
                self._instruments[n].collect() for n in self.names()
            ]
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def render_text(self) -> str:
        """Prometheus-flavoured text exposition."""
        lines: list[str] = []
        for name in self.names():
            inst = self._instruments[name]
            if inst.help:
                lines.append(f"# HELP {name} {inst.help}")
            lines.append(f"# TYPE {name} {inst.kind}")
            lines.extend(inst.render())
        return "\n".join(lines) + "\n"

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")
