"""What-if profiler: counterfactual bottleneck ranking.

PR 6's attribution answers *where the time went*; this module answers
*what a change would buy*. Given a completed run's per-request
:class:`~repro.obs.attribution.RequestAttribution` timelines, a
:class:`WhatIfProfiler` evaluates a catalog of resource interventions —
"NVLink 2x", "leader Ethernet 2x", "INA switch SRAM slots 4x", "prefill
compute 2x", ... — and predicts how each would move p50/p99 TTFT, TPOT
and throughput. Two estimators:

* **analytic** (:meth:`WhatIfProfiler.predict`) replays every request's
  component budget with the targeted resource rescaled. Link
  interventions use the congested-link tags attribution records on each
  all-reduce share: only the share fraction whose bottleneck link
  belongs to the targeted class is divided by ``k``. Queueing components
  are then scaled by the fleet-wide service-time ratio of their server
  (``queue_wait`` tracks the prefill service time, ``decode_wait`` the
  decode iteration time) — a first-order M/G/1-style approximation.
* **counterfactual re-simulation** (:meth:`WhatIfProfiler.resimulate`)
  perturbs the actual :class:`~repro.serving.engine.EngineConfig`
  (capacity scales on the run's LinkLoadTracker, compute/KV speedups,
  slot budgets, controller cadence) and re-runs the simulator with the
  same plan, trace and seeds. It is the ground truth the analytic
  numbers are validated against; the pinned tolerance is asserted by a
  golden test and by ``python -m repro whatif --validate`` in CI.

Interventions the analytic model knows it cannot help with stay honest:
``ina_slots`` and ``sched_tick`` predict zero first-order gain, and the
re-simulation confirms (or refutes) that for the topology at hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.obs.attribution import AttributionCollector, RequestAttribution

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.baselines.systems import ServingSystem
    from repro.serving.engine import EngineConfig
    from repro.serving.metrics import ServingMetrics
    from repro.workloads.traces import Trace

__all__ = [
    "DEFAULT_CATALOG",
    "DEFAULT_TOLERANCE",
    "ERROR_FLOOR_FRAC",
    "TOLERANCES",
    "Intervention",
    "RunStats",
    "WhatIfEstimate",
    "WhatIfResult",
    "WhatIfProfiler",
    "render_ladder",
]

#: Relative-error tolerance on the Δp99-TTFT agreement between the
#: analytic estimate and the counterfactual re-simulation (the ISSUE 7
#: acceptance target). Per-resource overrides live in TOLERANCES.
DEFAULT_TOLERANCE = 0.15

#: The error denominator is floored at this fraction of the baseline
#: p99 TTFT, so interventions whose true effect is ~zero (e.g. INA
#: slots on a run whose live pricing never hits the slot window) are
#: judged on absolute, not relative, agreement.
ERROR_FLOOR_FRAC = 0.05

#: Resources whose first-order analytic model is known to be coarser
#: (queueing feedback on the scaled resource) get a wider, documented
#: tolerance; see docs/OBSERVABILITY.md ("What-if profiling").
TOLERANCES: dict[str, float] = {
    "compute:prefill": 0.35,
    "compute:decode": 0.35,
    "link:ethernet_access": 0.35,
    "kv_path": 0.35,
}


def tolerance_for(resource: str) -> float:
    """Pinned analytic-vs-resim tolerance for one resource."""
    return TOLERANCES.get(resource, DEFAULT_TOLERANCE)


@dataclass(frozen=True)
class Intervention:
    """One catalog entry: make ``resource`` ``factor``x faster/bigger."""

    key: str
    label: str
    #: ``link:<class>`` (Topology.link_classes names), ``compute:prefill``,
    #: ``compute:decode``, ``kv_path``, ``ina_slots`` or ``sched_tick``
    resource: str
    factor: float

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "label": self.label,
            "resource": self.resource,
            "factor": self.factor,
        }


#: The heterogeneous-network upgrade catalog of ISSUE 7: every resource
#: class the paper's evaluation shows can become the binding one.
DEFAULT_CATALOG: tuple[Intervention, ...] = (
    Intervention(
        "nvlink_bw_2x", "NVLink bandwidth 2x", "link:nvlink", 2.0
    ),
    Intervention(
        "leader_eth_2x",
        "leader (GPU<->switch) Ethernet 2x",
        "link:ethernet_access",
        2.0,
    ),
    Intervention(
        "trunk_eth_2x",
        "inter-track trunk Ethernet 2x",
        "link:ethernet_trunk",
        2.0,
    ),
    Intervention(
        "ina_slots_4x", "INA switch SRAM slots 4x", "ina_slots", 4.0
    ),
    Intervention(
        "prefill_compute_2x",
        "prefill-cluster compute 2x",
        "compute:prefill",
        2.0,
    ),
    Intervention(
        "decode_compute_2x",
        "decode-cluster compute 2x",
        "compute:decode",
        2.0,
    ),
    Intervention(
        "kv_path_2x", "KV-transfer path 2x", "kv_path", 2.0
    ),
    Intervention(
        "sched_tick_4x",
        "scheduler tick 4x faster",
        "sched_tick",
        4.0,
    ),
)


@dataclass(frozen=True)
class RunStats:
    """The headline serving metrics one what-if run is judged on."""

    n_requests: int
    p50_ttft_s: float
    p99_ttft_s: float
    p50_tpot_s: float
    p99_tpot_s: float
    throughput_rps: float

    def to_dict(self) -> dict:
        return {
            "n_requests": self.n_requests,
            "p50_ttft_s": round(self.p50_ttft_s, 6),
            "p99_ttft_s": round(self.p99_ttft_s, 6),
            "p50_tpot_s": round(self.p50_tpot_s, 6),
            "p99_tpot_s": round(self.p99_tpot_s, 6),
            "throughput_rps": round(self.throughput_rps, 6),
        }


def stats_from_metrics(metrics: "ServingMetrics") -> RunStats:
    """Headline stats from a run's finished requests.

    Percentiles are computed here (not via the metrics helpers) so the
    baseline, analytic and re-simulated sides all use one method.
    """
    reqs = metrics.finished
    if not reqs:
        return RunStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    ttft = np.array([r.ttft for r in reqs])
    tpot = np.array([r.tpot for r in reqs])
    arrivals = np.array([r.arrival_time for r in reqs])
    finishes = np.array([r.finish_time for r in reqs])
    span = float(finishes.max() - arrivals.min())
    return RunStats(
        n_requests=len(reqs),
        p50_ttft_s=float(np.percentile(ttft, 50)),
        p99_ttft_s=float(np.percentile(ttft, 99)),
        p50_tpot_s=float(np.percentile(tpot, 50)),
        p99_tpot_s=float(np.percentile(tpot, 99)),
        throughput_rps=len(reqs) / span if span > 0 else 0.0,
    )


@dataclass
class WhatIfEstimate:
    """One intervention's predicted (and optionally re-simulated) gain."""

    intervention: Intervention
    baseline: RunStats
    predicted: RunStats
    resim: RunStats | None = None

    # -- deltas (positive = improvement) -------------------------------

    @property
    def d_p99_ttft_s(self) -> float:
        return self.baseline.p99_ttft_s - self.predicted.p99_ttft_s

    @property
    def d_throughput_rps(self) -> float:
        return (
            self.predicted.throughput_rps - self.baseline.throughput_rps
        )

    @property
    def resim_d_p99_ttft_s(self) -> float | None:
        if self.resim is None:
            return None
        return self.baseline.p99_ttft_s - self.resim.p99_ttft_s

    # -- validation ----------------------------------------------------

    @property
    def tolerance(self) -> float:
        return tolerance_for(self.intervention.resource)

    @property
    def rel_error(self) -> float | None:
        """|Δanalytic - Δresim| / max(|Δresim|, floor) on p99 TTFT.

        The floor (:data:`ERROR_FLOOR_FRAC` of the baseline p99) keeps
        near-zero-effect interventions from dividing by ~0.
        """
        d_resim = self.resim_d_p99_ttft_s
        if d_resim is None:
            return None
        floor = ERROR_FLOOR_FRAC * self.baseline.p99_ttft_s
        denom = max(abs(d_resim), floor)
        if denom <= 0.0:
            return 0.0
        return abs(self.d_p99_ttft_s - d_resim) / denom

    @property
    def within_tolerance(self) -> bool | None:
        err = self.rel_error
        if err is None:
            return None
        return err <= self.tolerance

    def to_dict(self) -> dict:
        out = {
            "intervention": self.intervention.to_dict(),
            "predicted": self.predicted.to_dict(),
            "delta": {
                "p99_ttft_s": round(self.d_p99_ttft_s, 6),
                "p50_ttft_s": round(
                    self.baseline.p50_ttft_s
                    - self.predicted.p50_ttft_s,
                    6,
                ),
                "p99_tpot_s": round(
                    self.baseline.p99_tpot_s
                    - self.predicted.p99_tpot_s,
                    6,
                ),
                "throughput_rps": round(self.d_throughput_rps, 6),
            },
        }
        if self.resim is not None:
            out["resim"] = self.resim.to_dict()
            out["resim_delta"] = {
                "p99_ttft_s": round(self.resim_d_p99_ttft_s, 6),
                "throughput_rps": round(
                    self.resim.throughput_rps
                    - self.baseline.throughput_rps,
                    6,
                ),
            }
            out["rel_error"] = round(self.rel_error, 6)
            out["tolerance"] = self.tolerance
            out["within_tolerance"] = self.within_tolerance
        return out


@dataclass
class WhatIfResult:
    """Ranked bottleneck ladder over the full intervention catalog."""

    baseline: RunStats
    rows: list[WhatIfEstimate] = field(default_factory=list)
    validated: bool = False

    @property
    def all_within_tolerance(self) -> bool:
        """True when every validated row agrees with its re-simulation."""
        return all(
            row.within_tolerance is not False for row in self.rows
        )

    def top(self, k: int | None = None) -> list[WhatIfEstimate]:
        return self.rows[: k if k is not None else len(self.rows)]

    def to_payload(self, meta: dict | None = None) -> dict:
        """Deterministic JSON-ready dump (``<run>-whatif.json``)."""
        return {
            "meta": dict(meta or {}),
            "validated": self.validated,
            "baseline": self.baseline.to_dict(),
            "interventions": [row.to_dict() for row in self.rows],
        }


class WhatIfProfiler:
    """Counterfactual profiler over one (system, trace) deployment.

    ``run_baseline()`` executes the observed baseline once (attaching
    its own attribution collector — results stay byte-identical to an
    unobserved run); ``ladder()`` then ranks the catalog analytically
    and, with ``validate=True``, re-simulates every intervention.
    A pre-collected :class:`AttributionCollector` (e.g. loaded from a
    prior run's ``--obs-dir`` dump) can be supplied instead, in which
    case only ``validate`` needs the live system.
    """

    def __init__(
        self,
        system: "ServingSystem",
        trace: "Trace",
        base_config: "EngineConfig | None" = None,
        catalog: tuple[Intervention, ...] = DEFAULT_CATALOG,
    ) -> None:
        from repro.serving.engine import EngineConfig

        self.system = system
        self.trace = trace
        self.catalog = tuple(catalog)
        self.base_config = base_config or EngineConfig()
        self._classes = system.built.topology.link_classes()
        self._sens_cache: dict[tuple[str, str, str], float] = {}
        self.collector: AttributionCollector | None = None
        self.baseline_metrics: "ServingMetrics | None" = None
        self.baseline: RunStats | None = None

    # -- baseline ------------------------------------------------------

    def run_baseline(self) -> "ServingMetrics":
        """Execute the observed baseline run (attribution attached)."""
        from repro.baselines.systems import simulate_trace
        from repro.obs.observer import Observer

        collector = AttributionCollector()
        cfg = replace(
            self.base_config, observer=Observer(attribution=collector)
        )
        metrics = simulate_trace(
            self.system, self.trace, engine_config=cfg
        )
        self.collector = collector
        self.baseline_metrics = metrics
        self.baseline = stats_from_metrics(metrics)
        return metrics

    def use_attributions(
        self, collector: AttributionCollector
    ) -> None:
        """Adopt a pre-collected baseline (e.g. a ``--from-dir`` load)."""
        self.collector = collector
        self.baseline = self._stats_from_attributions(
            collector.finished
        )

    def _require_baseline(self) -> list[RequestAttribution]:
        if self.collector is None:
            self.run_baseline()
        return self.collector.finished

    # -- analytic estimator --------------------------------------------

    def _link_class(self, link_id: int | None) -> str | None:
        if link_id is None or not (
            0 <= link_id < len(self._classes)
        ):
            return None
        return self._classes[link_id]

    def _idle_class_fraction(
        self, cls: str, phase: str, policy: str
    ) -> float:
        """Fraction of one idle-network group step under ``policy``
        spent on class-``cls`` links.

        Calibrated, not assumed: the plan's stage groups are priced on a
        fresh idle context twice — once as-is, once with the class
        probe-scaled — and the observed speedup is inverted. This is how
        the analytic estimator credits stages the congestion tags cannot
        see (e.g. the NVLink first stage folded into a hybrid share
        whose bottleneck tag points at the Ethernet hop).
        """
        key = (cls, phase, policy)
        cached = self._sens_cache.get(key)
        if cached is not None:
            return cached
        from repro.comm.latency import allreduce_bytes, price_group_step

        plan = self.system.plan
        phase_plan = plan.prefill if phase == "prefill" else plan.decode
        # Representative payloads (K_in tokens / decode batch Q); the
        # *fraction* is insensitive to the exact size in the
        # bandwidth-dominated regime the tail lives in.
        tokens = 512 if phase == "prefill" else 64
        data = allreduce_bytes(self.system.model, tokens)
        mode, _, sw = policy.partition("@")
        # Policy names are scheduler-facing; forced pricing wants the
        # scheme's ethernet_mode vocabulary.
        mode = {
            "hybrid-ina": "ina",
            "hybrid-ring": "ring",
            "nvlink": "none",
        }.get(mode, mode)
        ina_switch = int(sw) if sw else None
        probe = 4.0
        frac = 0.0
        try:
            base_ctx = self.system.fresh_context()
            fast_ctx = self.system.fresh_context()
            fast_ctx.linkstate.scale_class(cls, probe)
            t1 = sum(
                price_group_step(
                    base_ctx, stage, plan.scheme, mode, ina_switch, data
                )
                for stage in phase_plan.stages
            )
            tk = sum(
                price_group_step(
                    fast_ctx, stage, plan.scheme, mode, ina_switch, data
                )
                for stage in phase_plan.stages
            )
            if t1 > 0.0:
                frac = (1.0 - tk / t1) / (1.0 - 1.0 / probe)
                frac = max(0.0, min(1.0, frac))
        except (ValueError, KeyError):
            # Unknown mode/class for this scheme: claim no sensitivity.
            frac = 0.0
        self._sens_cache[key] = frac
        return frac

    def _rescale(
        self, attr: RequestAttribution, iv: Intervention
    ) -> dict[str, float]:
        """One request's component budget under the intervention,
        before fleet-wide wait scaling."""
        comps = dict(attr.components)
        res, k = iv.resource, iv.factor
        if res.startswith("link:"):
            cls = res.split(":", 1)[1]
            for phase, comp in (
                ("prefill", "prefill_allreduce"),
                ("decode", "decode_allreduce"),
            ):
                shares = [
                    s for s in attr.allreduce if s.phase == phase
                ]
                total = sum(s.seconds for s in shares)
                if total <= 0.0 or comps[comp] <= 0.0:
                    continue
                new_total = 0.0
                for s in shares:
                    if self._link_class(s.bottleneck_link) == cls:
                        # Congested on the upgraded class: the whole
                        # share tracks that link's service rate.
                        new_total += s.seconds / k
                    else:
                        f = self._idle_class_fraction(
                            cls, phase, s.policy
                        )
                        new_total += s.seconds * (
                            1.0 - f * (1.0 - 1.0 / k)
                        )
                # Any non-share remainder (pipeline sync) is unscaled.
                comps[comp] = max(
                    0.0, comps[comp] - total + new_total
                )
            if cls == "ethernet_access":
                # The leader links are also every KV flow's first and
                # last hop — on the paper's topologies, its bottleneck.
                comps["kv_transfer"] /= k
        elif res == "compute:prefill":
            comps["prefill_compute"] /= k
        elif res == "compute:decode":
            comps["decode_compute"] /= k
        elif res == "kv_path":
            comps["kv_transfer"] /= k
        # ina_slots / sched_tick: no first-order per-request effect —
        # live policy pricing is slot-oblivious and the controller
        # refresh already outpaces policy drift. The resim validates.
        return comps

    def predict(self, iv: Intervention) -> RunStats:
        """Analytic estimate: replay attributions with ``iv`` applied."""
        attrs = self._require_baseline()
        if not attrs:
            return RunStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        scaled = [self._rescale(a, iv) for a in attrs]
        base = [a.components for a in attrs]

        def fleet_ratio(parts: tuple[str, ...]) -> float:
            old = sum(sum(c[p] for p in parts) for c in base)
            new = sum(sum(c[p] for p in parts) for c in scaled)
            return new / old if old > 0.0 else 1.0

        # Queueing feedback, first order: waiting time tracks the
        # service time of the server being waited on.
        r_pre = fleet_ratio(("prefill_compute", "prefill_allreduce"))
        r_dec = fleet_ratio(("decode_compute", "decode_allreduce"))
        for c in scaled:
            c["queue_wait"] *= r_pre
            c["decode_wait"] *= r_dec
        return self._stats_from_components(attrs, scaled)

    def _stats_from_attributions(
        self, attrs: list[RequestAttribution]
    ) -> RunStats:
        return self._stats_from_components(
            attrs, [a.components for a in attrs]
        )

    def _stats_from_components(
        self,
        attrs: list[RequestAttribution],
        comps: list[dict[str, float]],
    ) -> RunStats:
        if not attrs:
            return RunStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ttft = np.array(
            [
                c["queue_wait"]
                + c["fault_redo"]
                + c["prefill_compute"]
                + c["prefill_allreduce"]
                for c in comps
            ]
        )
        decode_lat = np.array(
            [
                c["kv_transfer"]
                + c["kv_retry_backoff"]
                + c["decode_wait"]
                + c["decode_compute"]
                + c["decode_allreduce"]
                for c in comps
            ]
        )
        # TPOT proxy: mean per-iteration decode time. It telescopes the
        # same way the real TPOT does, so percentile *ratios* transfer.
        iters = np.array([max(a.decode_iters, 1) for a in attrs])
        per_iter = np.array(
            [
                (c["decode_compute"] + c["decode_allreduce"]) / n
                for c, n in zip(comps, iters)
            ]
        )
        arrivals = np.array([a.arrival for a in attrs])
        finishes = arrivals + ttft + decode_lat
        span = float(finishes.max() - arrivals.min())
        base = self.baseline
        if base is not None and base.n_requests == len(attrs):
            # Anchor TPOT to the measured baseline values via the
            # proxy's percentile ratio (the proxy excludes KV/wait time
            # that the measured TPOT also excludes, but the anchoring
            # removes any residual constant bias).
            base_proxy = np.array(
                [
                    (
                        a.components["decode_compute"]
                        + a.components["decode_allreduce"]
                    )
                    / max(a.decode_iters, 1)
                    for a in attrs
                ]
            )
            p50_ratio = _safe_ratio(
                float(np.percentile(per_iter, 50)),
                float(np.percentile(base_proxy, 50)),
            )
            p99_ratio = _safe_ratio(
                float(np.percentile(per_iter, 99)),
                float(np.percentile(base_proxy, 99)),
            )
            p50_tpot = base.p50_tpot_s * p50_ratio
            p99_tpot = base.p99_tpot_s * p99_ratio
        else:
            p50_tpot = float(np.percentile(per_iter, 50))
            p99_tpot = float(np.percentile(per_iter, 99))
        return RunStats(
            n_requests=len(attrs),
            p50_ttft_s=float(np.percentile(ttft, 50)),
            p99_ttft_s=float(np.percentile(ttft, 99)),
            p50_tpot_s=p50_tpot,
            p99_tpot_s=p99_tpot,
            throughput_rps=len(attrs) / span if span > 0 else 0.0,
        )

    # -- counterfactual re-simulation ----------------------------------

    def perturbed_config(self, iv: Intervention) -> "EngineConfig":
        """The actual EngineConfig perturbation ``iv`` maps to."""
        from repro.comm.latency import DEFAULT_N_SLOTS
        from repro.obs.observer import NULL_OBSERVER

        base = replace(self.base_config, observer=NULL_OBSERVER)
        res, k = iv.resource, iv.factor
        if res.startswith("link:"):
            return replace(
                base, link_scale=((res.split(":", 1)[1], k),)
            )
        if res == "compute:prefill":
            return replace(base, prefill_compute_scale=k)
        if res == "compute:decode":
            return replace(base, decode_compute_scale=k)
        if res == "kv_path":
            return replace(base, kv_time_scale=k)
        if res == "ina_slots":
            return replace(base, n_slots=int(round(DEFAULT_N_SLOTS * k)))
        if res == "sched_tick":
            return replace(
                base,
                controller_period=self.base_config.controller_period / k,
            )
        raise ValueError(f"unknown intervention resource {res!r}")

    def resimulate(self, iv: Intervention) -> RunStats:
        """Ground truth: re-run the same plan/trace/seed, perturbed."""
        from repro.baselines.systems import simulate_trace

        metrics = simulate_trace(
            self.system, self.trace, engine_config=self.perturbed_config(iv)
        )
        return stats_from_metrics(metrics)

    # -- the ladder ----------------------------------------------------

    def ladder(self, validate: bool = False) -> WhatIfResult:
        """Rank the catalog by predicted Δp99 TTFT (ties: throughput)."""
        self._require_baseline()
        assert self.baseline is not None
        rows = [
            WhatIfEstimate(
                intervention=iv,
                baseline=self.baseline,
                predicted=self.predict(iv),
            )
            for iv in self.catalog
        ]
        if validate:
            for row in rows:
                row.resim = self.resimulate(row.intervention)
        rows.sort(
            key=lambda r: (
                -r.d_p99_ttft_s,
                -r.d_throughput_rps,
                r.intervention.key,
            )
        )
        return WhatIfResult(
            baseline=self.baseline, rows=rows, validated=validate
        )


def _safe_ratio(num: float, den: float) -> float:
    return num / den if den > 0.0 else 1.0


def render_ladder(result: WhatIfResult, top: int | None = None) -> str:
    """The ranked bottleneck ladder as aligned text (CLI output)."""
    b = result.baseline
    lines = [
        (
            f"what-if bottleneck ladder over {b.n_requests} requests "
            f"(baseline p99 TTFT {b.p99_ttft_s:.4f}s, "
            f"p99 TPOT {b.p99_tpot_s * 1e3:.1f}ms, "
            f"throughput {b.throughput_rps:.3f} req/s)"
        )
    ]
    for rank, row in enumerate(result.top(top), start=1):
        d = row.d_p99_ttft_s
        pct = d / b.p99_ttft_s if b.p99_ttft_s > 0 else 0.0
        line = (
            f"{rank:>3}. {row.intervention.label:<36s}"
            f" Δp99 TTFT {d:+.4f}s ({pct:+.1%})"
            f"  Δthroughput {row.d_throughput_rps:+.3f} req/s"
        )
        if row.resim is not None:
            verdict = "ok" if row.within_tolerance else "DIVERGED"
            line += (
                f"  [resim {row.resim_d_p99_ttft_s:+.4f}s,"
                f" err {row.rel_error:.0%} <= {row.tolerance:.0%}"
                f" {verdict}]"
            )
        lines.append(line)
    if result.validated:
        lines.append(
            "validated: analytic vs re-simulated deltas "
            + (
                "all within tolerance"
                if result.all_within_tolerance
                else "DIVERGED beyond tolerance"
            )
        )
    return "\n".join(lines)
