"""Simulator self-profiling: where does the *simulator's* wall-clock go?

Distinct from :mod:`repro.obs.profile` (planner phase timers, lock-based)
and from the simulation-time spans of :mod:`repro.obs.trace`: a
:class:`SelfProfiler` measures the engine's own Python hot path in
**host** wall-clock — per-tag event-handler time from the
:class:`~repro.sim.eventqueue.EventQueue`, plus named engine sections
(batch formation, link-load bookkeeping, controller ticks) — and reduces
them to requests-simulated/sec and events/sec. This is the measurement
harness the ROADMAP's engine-vectorization work is gated on
(``benchmarks/results/BENCH_engine.json``).

Attach it through the observer handle: ``Observer(selfprof=...)`` for a
fully observed run, or :class:`SelfProfilingObserver` — a
:class:`~repro.obs.observer.NullObserver` carrying only the profiler —
when the measurement itself must not pay span-emission overhead (the
benchmark configuration). The engine reads ``observer.selfprof``
independently of ``observer.enabled``, so the Null-based variant keeps
simulation *results* byte-identical while still timing the hot path.

Accumulators are plain dict-of-list counters without locks: the engine
is single-threaded and the per-event overhead must stay at two
``perf_counter`` calls plus one dict lookup.
"""

from __future__ import annotations

import time

from repro.obs.observer import NullObserver

__all__ = ["SelfProfiler", "SelfProfilingObserver"]


class SelfProfiler:
    """Lock-free wall-clock accumulator for the simulator hot path."""

    __slots__ = (
        "sections",
        "handlers",
        "wall_s",
        "events_fired",
        "requests_finished",
        "runs",
        "_t0",
    )

    def __init__(self) -> None:
        #: named engine/controller sections: ``{name: [total_s, count]}``
        self.sections: dict[str, list] = {}
        #: per-event-tag handler time: ``{tag: [total_s, count]}``
        self.handlers: dict[str, list] = {}
        self.wall_s = 0.0
        self.events_fired = 0
        self.requests_finished = 0
        self.runs = 0
        self._t0: float | None = None

    # -- accumulation (hot) ----------------------------------------------

    def add(self, name: str, dt: float) -> None:
        """Accumulate one named section occurrence."""
        acc = self.sections.get(name)
        if acc is None:
            self.sections[name] = [dt, 1]
        else:
            acc[0] += dt
            acc[1] += 1

    def event(self, tag: str, dt: float) -> None:
        """Accumulate one event-handler firing (EventQueue callback)."""
        acc = self.handlers.get(tag)
        if acc is None:
            self.handlers[tag] = [dt, 1]
        else:
            acc[0] += dt
            acc[1] += 1

    # -- run bracketing ----------------------------------------------------

    def run_started(self) -> None:
        self._t0 = time.perf_counter()

    def run_finished(self, n_finished: int, events_fired: int) -> None:
        if self._t0 is not None:
            self.wall_s += time.perf_counter() - self._t0
            self._t0 = None
        self.requests_finished += n_finished
        self.events_fired += events_fired
        self.runs += 1

    # -- reductions --------------------------------------------------------

    @property
    def requests_per_s(self) -> float:
        """Requests simulated per host wall-clock second."""
        return (
            self.requests_finished / self.wall_s
            if self.wall_s > 0
            else 0.0
        )

    @property
    def events_per_s(self) -> float:
        return self.events_fired / self.wall_s if self.wall_s > 0 else 0.0

    @staticmethod
    def _table(acc: dict[str, list]) -> dict[str, dict[str, float]]:
        return {
            name: {"total_s": total, "count": float(count)}
            for name, (total, count) in sorted(
                acc.items(), key=lambda kv: kv[1][0], reverse=True
            )
        }

    def snapshot(self) -> dict:
        """JSON-ready profile: throughput plus section/handler tables."""
        return {
            "runs": self.runs,
            "wall_s": self.wall_s,
            "events_fired": self.events_fired,
            "events_per_s": self.events_per_s,
            "requests_finished": self.requests_finished,
            "requests_per_s": self.requests_per_s,
            "sections": self._table(self.sections),
            "event_handlers": self._table(self.handlers),
        }

    def report(self, title: str = "engine self-profile") -> str:
        """Aligned text rendering of :meth:`snapshot`."""
        lines = [
            f"{title}: {self.requests_finished} requests / "
            f"{self.events_fired} events in {self.wall_s:.3f}s wall "
            f"({self.requests_per_s:.0f} req/s, "
            f"{self.events_per_s:.0f} ev/s)"
        ]
        for label, acc in (
            ("event handlers", self.handlers),
            ("sections", self.sections),
        ):
            if not acc:
                continue
            lines.append(f"  {label}:")
            for name, (total, count) in sorted(
                acc.items(), key=lambda kv: kv[1][0], reverse=True
            ):
                mean_us = total / count * 1e6 if count else 0.0
                lines.append(
                    f"    {name:<24s} {total * 1e3:9.2f} ms "
                    f"x{count:<8d} ({mean_us:7.1f} us/call)"
                )
        return "\n".join(lines)


class SelfProfilingObserver(NullObserver):
    """A NullObserver that carries only a :class:`SelfProfiler`.

    ``enabled`` stays ``False``: no spans, no metrics, no behaviour
    change — the simulation result is byte-identical to an unobserved
    run — but the engine still times its hot path through
    ``observer.selfprof``. This is the benchmark configuration: the
    throughput number measures the simulator, not the telemetry.
    """

    def __init__(self, selfprof: SelfProfiler | None = None) -> None:
        self.selfprof = selfprof or SelfProfiler()
