"""Simulation flight recorder: ring-buffered timeline of cluster state.

A :class:`FlightRecorder` is the simulator's black box: on every
controller tick (simulation time, never wall clock — observed runs stay
deterministic) it captures one :class:`FlightSample` of

* engine queue depths and batch occupancy (prefill queue, decode
  pending/active, busy flags, KV-cache tokens),
* per-link-kind utilisation plus the top-k busiest individual links
  from the :class:`~repro.network.linkstate.LinkLoadTracker`,
* every GPU group's policy cost table — the ``J(c, D)`` base terms
  ``b_c`` and cumulative selections from the
  :class:`~repro.core.scheduler.LoadAwareScheduler`s — so the report
  can render the policy-flip timeline,
* in-network-aggregation pressure per INA-capable switch (mean/max
  utilisation of the switch's Ethernet ports), and, when a functional
  :class:`~repro.switch.dataplane.SwitchDataplane` is attached, its
  real aggregator-slot counters.

The buffer is a fixed-capacity ring: past ``capacity`` samples the
oldest are evicted (and counted), so recording a week-long simulated
trace cannot exhaust host memory. Export is JSONL, one sample per line.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.serving.engine import ServingSimulator
    from repro.switch.dataplane import SwitchDataplane

__all__ = ["FlightSample", "FlightRecorder", "REPLAN_EVENTS"]

#: Individual links quieter than this utilisation are not recorded per
#: sample (kind-level aggregates still cover them).
RECORD_MIN_LINK_UTIL = 0.01

#: Event names emitted by the online replanner (observer.replan_event);
#: the report's "Plan transitions" timeline filters on these.
REPLAN_EVENTS = (
    "replan_triggered",
    "replan_suppressed",
    "plan_transition",
    "transition_complete",
    "transition_rollback",
)


@dataclass
class FlightSample:
    """One tick of recorded cluster state."""

    time: float
    prefill_queue: int
    decode_pending: int
    decode_active: int
    prefill_busy: bool
    decode_busy: bool
    kv_used: int
    kv_capacity: int
    #: ``{kind: (mean util, max util)}``
    link_util: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: ``[(link_id, kind, util)]``, busiest first, bounded to top-k
    busy_links: list[tuple[int, str, float]] = field(default_factory=list)
    #: ``{group key: {"policies": [...], "b": [...], "selections": [...]}}``
    policy_tables: dict[str, dict] = field(default_factory=dict)
    #: ``{switch id: (mean util, max util)}`` over the switch's ports
    switch_pressure: dict[int, tuple[float, float]] = field(
        default_factory=dict
    )
    #: ``{switch id: dataplane counters}`` for attached real dataplanes
    aggregators: dict[int, dict] = field(default_factory=dict)

    @property
    def kv_utilization(self) -> float:
        if self.kv_capacity <= 0:
            return float("nan")
        return self.kv_used / self.kv_capacity

    def to_dict(self) -> dict[str, Any]:
        return {
            "time": self.time,
            "prefill_queue": self.prefill_queue,
            "decode_pending": self.decode_pending,
            "decode_active": self.decode_active,
            "prefill_busy": self.prefill_busy,
            "decode_busy": self.decode_busy,
            "kv_used": self.kv_used,
            "kv_capacity": self.kv_capacity,
            "link_util": {
                k: [mean, mx] for k, (mean, mx) in self.link_util.items()
            },
            "busy_links": [
                [lid, kind, util] for lid, kind, util in self.busy_links
            ],
            "policy_tables": self.policy_tables,
            "switch_pressure": {
                str(s): [mean, mx]
                for s, (mean, mx) in self.switch_pressure.items()
            },
            "aggregators": {
                str(s): c for s, c in self.aggregators.items()
            },
        }


class FlightRecorder:
    """Fixed-capacity sample ring fed on controller ticks."""

    def __init__(self, capacity: int = 4096, top_k_links: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if top_k_links < 1:
            raise ValueError(f"top_k_links must be >= 1, got {top_k_links}")
        self.capacity = capacity
        self.top_k_links = top_k_links
        self._ring: deque[FlightSample] = deque(maxlen=capacity)
        self.samples_total = 0
        self._dataplanes: dict[int, "SwitchDataplane"] = {}
        self._switch_ports: dict[int, list[int]] | None = None
        #: discrete events (fault injections, health edges, failovers) —
        #: ring-bounded like the samples so chaos storms cannot blow up
        self._events: deque[dict] = deque(maxlen=capacity)
        self.events_total = 0

    # -- wiring --------------------------------------------------------------

    def attach_dataplane(
        self, switch_id: int, dataplane: "SwitchDataplane"
    ) -> None:
        """Record a functional switch dataplane's counters per sample."""
        self._dataplanes[switch_id] = dataplane

    def _ina_ports(self, sim: "ServingSimulator") -> dict[int, list[int]]:
        """Directed link ids incident to each INA-capable switch."""
        if self._switch_ports is None:
            topo = sim.ctx.built.topology
            ports: dict[int, list[int]] = {
                sw: [] for sw in sim.ctx.built.ina_capable_switches()
            }
            for link in topo.links:
                if link.src in ports:
                    ports[link.src].append(link.link_id)
                if link.dst in ports:
                    ports[link.dst].append(link.link_id)
            self._switch_ports = ports
        return self._switch_ports

    # -- sampling ------------------------------------------------------------

    def sample(self, ts: float, sim: "ServingSimulator") -> FlightSample:
        """Capture one sample from a live simulator; returns it."""
        ls = sim.ctx.linkstate
        util = ls.utilization()
        busy = sorted(
            ls.busy_links(RECORD_MIN_LINK_UTIL),
            key=lambda row: -row[2],
        )[: self.top_k_links]

        tables: dict[str, dict] = {}
        if sim.controller is not None:
            tables = sim.controller.table_snapshots()

        pressure: dict[int, tuple[float, float]] = {}
        for sw, port_ids in self._ina_ports(sim).items():
            if port_ids:
                u = util[port_ids]
                pressure[sw] = (float(u.mean()), float(u.max()))

        s = FlightSample(
            time=ts,
            prefill_queue=len(sim.prefill_queue),
            decode_pending=len(sim.decode_pending),
            decode_active=len(sim.decode_active),
            prefill_busy=sim.prefill_busy,
            decode_busy=sim.decode_busy,
            kv_used=sim.kv_used,
            kv_capacity=sim.kv_capacity,
            link_util=ls.utilization_by_kind(),
            busy_links=busy,
            policy_tables=tables,
            switch_pressure=pressure,
            aggregators={
                sw: dp.counters() for sw, dp in self._dataplanes.items()
            },
        )
        self.record(s)
        return s

    def record(self, sample: FlightSample) -> None:
        """Append a pre-built sample (tests, custom harnesses)."""
        self._ring.append(sample)
        self.samples_total += 1

    def log_event(self, ts: float, event: str, **detail: Any) -> None:
        """Record one discrete event (fault, health edge, failover).

        Events are exported interleaved with samples in
        :meth:`to_jsonl`, each line tagged ``"event": event``; the
        detail kwargs land as additional JSON keys.
        """
        self._events.append({"time": ts, "event": event, **detail})
        self.events_total += 1

    def replan_timeline(self) -> list[dict]:
        """Online-replanning events in time order (the raw material of
        the report's "Plan transitions" section)."""
        return [
            e for e in self._events if e["event"] in REPLAN_EVENTS
        ]

    def events(self, event: str | None = None) -> list[dict]:
        """Recorded events, optionally filtered by event name."""
        if event is None:
            return list(self._events)
        return [e for e in self._events if e["event"] == event]

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def evicted(self) -> int:
        """Samples pushed out of the ring by newer ones."""
        return self.samples_total - len(self._ring)

    def samples(self) -> list[FlightSample]:
        return list(self._ring)

    def series(self, attr: str) -> tuple[list[float], list[float]]:
        """``(times, values)`` of one numeric sample attribute."""
        times: list[float] = []
        values: list[float] = []
        for s in self._ring:
            times.append(s.time)
            values.append(float(getattr(s, attr)))
        return times, values

    def link_kind_series(
        self, kind: str, stat: str = "mean"
    ) -> tuple[list[float], list[float]]:
        """Utilisation timeline of one link kind (``mean`` or ``max``)."""
        idx = 0 if stat == "mean" else 1
        times: list[float] = []
        values: list[float] = []
        for s in self._ring:
            if kind in s.link_util:
                times.append(s.time)
                values.append(s.link_util[kind][idx])
        return times, values

    def top_links(self, k: int | None = None) -> list[tuple[int, str, float]]:
        """Busiest links over the whole recording, by peak utilisation."""
        peak: dict[int, tuple[str, float]] = {}
        for s in self._ring:
            for lid, kind, util in s.busy_links:
                if lid not in peak or util > peak[lid][1]:
                    peak[lid] = (kind, util)
        rows = [(lid, kind, util) for lid, (kind, util) in peak.items()]
        rows.sort(key=lambda row: -row[2])
        return rows[: k or self.top_k_links]

    def policy_flips(self) -> list[dict]:
        """Per-group timeline of the dominant policy changing.

        Between consecutive samples, the *dominant* policy of a group is
        the one whose cumulative selection count grew the most; a flip
        is recorded whenever it differs from the previous interval's.
        """
        flips: list[dict] = []
        prev_sel: dict[str, list[int]] = {}
        prev_dom: dict[str, str] = {}
        for s in self._ring:
            for group, table in s.policy_tables.items():
                sel = table["selections"]
                last = prev_sel.get(group)
                if last is not None and len(last) == len(sel):
                    deltas = [b - a for a, b in zip(last, sel)]
                    if any(d > 0 for d in deltas):
                        dom = table["policies"][
                            max(range(len(deltas)), key=deltas.__getitem__)
                        ]
                        if group in prev_dom and prev_dom[group] != dom:
                            flips.append(
                                {
                                    "time": s.time,
                                    "group": group,
                                    "from": prev_dom[group],
                                    "to": dom,
                                }
                            )
                        prev_dom[group] = dom
                prev_sel[group] = list(sel)
        return flips

    # -- export --------------------------------------------------------------

    def to_jsonl(self) -> str:
        """Samples and events, one JSON object per line, time-ordered.

        Sample lines are unchanged from before events existed; event
        lines carry an ``"event"`` key, so consumers can split on it.
        """
        rows: list[tuple[float, str]] = [
            (s.time, json.dumps(s.to_dict())) for s in self._ring
        ]
        rows.extend((e["time"], json.dumps(e)) for e in self._events)
        rows.sort(key=lambda row: row[0])
        lines = [line for _, line in rows]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())

    @classmethod
    def from_jsonl(cls, path: str) -> "FlightRecorder":
        """Rebuild a recorder from a :meth:`write_jsonl` dump.

        ``python -m repro report --from-dir`` renders prior runs with
        this. Samples and events round-trip (modulo the list->tuple
        JSON coercions reversed here); dataplane attachments do not.
        """
        samples: list[FlightSample] = []
        events: list[dict] = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                if "event" in row:
                    events.append(row)
                    continue
                samples.append(
                    FlightSample(
                        time=row["time"],
                        prefill_queue=row["prefill_queue"],
                        decode_pending=row["decode_pending"],
                        decode_active=row["decode_active"],
                        prefill_busy=row["prefill_busy"],
                        decode_busy=row["decode_busy"],
                        kv_used=row["kv_used"],
                        kv_capacity=row["kv_capacity"],
                        link_util={
                            k: (mean, mx)
                            for k, (mean, mx) in row["link_util"].items()
                        },
                        busy_links=[
                            (int(lid), kind, util)
                            for lid, kind, util in row["busy_links"]
                        ],
                        policy_tables=row["policy_tables"],
                        switch_pressure={
                            int(s): (mean, mx)
                            for s, (mean, mx) in row[
                                "switch_pressure"
                            ].items()
                        },
                        aggregators={
                            int(s): c
                            for s, c in row["aggregators"].items()
                        },
                    )
                )
        rec = cls(capacity=max(1, len(samples) + len(events)))
        for s in samples:
            rec.record(s)
        for e in events:
            rec._events.append(e)
            rec.events_total += 1
        return rec
