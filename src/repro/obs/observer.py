"""The observer: one handle bundling tracing, metrics and profiling.

A single :class:`Observer` is threaded through
:class:`~repro.serving.engine.EngineConfig`,
:class:`~repro.core.controller.CentralController`,
:class:`~repro.core.scheduler.LoadAwareScheduler` and
:class:`~repro.core.planner.OfflinePlanner`. Call sites invoke small
semantic hooks (``request_finished``, ``allreduce_span``,
``controller_tick`` ...) instead of talking to the recorder directly, so
the disabled path — :class:`NullObserver`, the default everywhere — is a
handful of no-op method calls guarded by an ``enabled`` flag and the
simulator's behaviour and output stay byte-identical to an unobserved
run.

This mirrors the paper's §III-D monitoring agents: DCGM / switch
hardware counters become :class:`LinkLoadTracker` samples exported as
gauges, per-group policy decisions become labelled counters, and request
lifecycles become Chrome-trace swimlanes.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import NULL_PROFILER, PhaseProfiler
from repro.obs.trace import REQUEST_PID, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.network.linkstate import LinkLoadTracker
    from repro.obs.attribution import AttributionCollector
    from repro.obs.recorder import FlightRecorder
    from repro.obs.selfprof import SelfProfiler
    from repro.obs.slo import SLOMonitor
    from repro.serving.engine import ServingSimulator
    from repro.serving.request import RequestState

__all__ = ["Observer", "NullObserver", "NULL_OBSERVER"]

#: Sampled per-link gauges skip links quieter than this utilisation, so
#: one busy fabric link is visible without exporting thousands of zeros.
LINK_GAUGE_MIN_UTIL = 0.01


def _span_if_valid(
    trace: TraceRecorder,
    track: str,
    name: str,
    start: float,
    end: float,
    tid: int,
    **args,
) -> None:
    if math.isnan(start) or math.isnan(end) or end < start:
        return
    trace.complete(
        track, name, start, end - start, pid=REQUEST_PID, tid=tid, **args
    )


class Observer:
    """Recording observer: traces + metrics + profiling all live."""

    enabled = True

    def __init__(
        self,
        trace: TraceRecorder | None = None,
        metrics: MetricsRegistry | None = None,
        profiler: PhaseProfiler | None = None,
        max_trace_events: int = 1_000_000,
        slo: "SLOMonitor | None" = None,
        recorder: "FlightRecorder | None" = None,
        attribution: "AttributionCollector | None" = None,
        selfprof: "SelfProfiler | None" = None,
    ) -> None:
        self.trace = trace or TraceRecorder(max_events=max_trace_events)
        self.metrics = metrics or MetricsRegistry()
        self.profiler = profiler or PhaseProfiler()
        #: optional burn-rate SLO monitor, fed on request finishes and
        #: evaluated on ``engine_tick``
        self.slo = slo
        #: optional flight recorder, sampled on ``engine_tick``
        self.recorder = recorder
        #: optional per-request critical-path attribution collector
        self.attribution = attribution
        #: optional simulator self-profiler (host wall-clock hot path);
        #: read by the engine directly, independent of ``enabled``
        self.selfprof = selfprof

        m = self.metrics
        self._slo_alerts = m.counter(
            "repro_slo_alerts_total",
            "burn-rate alert transitions by SLO, severity and state",
        )
        self._requests = m.counter(
            "repro_requests_total", "request lifecycle events by kind"
        )
        self._prefill_batches = m.counter(
            "repro_prefill_batches_total", "prefill batches executed"
        )
        self._decode_iters = m.counter(
            "repro_decode_iterations_total", "decode iterations executed"
        )
        self._kv_transfers = m.counter(
            "repro_kv_transfers_total", "prefill->decode KV transfers"
        )
        self._policy_selections = m.counter(
            "repro_policy_selections_total",
            "per-group all-reduce policy decisions (paper Fig. 5 table)",
        )
        self._controller_refreshes = m.counter(
            "repro_controller_refreshes_total",
            "central controller Eq. 18 refresh rounds",
        )
        self._ttft = m.histogram(
            "repro_ttft_seconds", "time to first token, streamed"
        )
        self._tpot = m.histogram(
            "repro_tpot_seconds", "time per output token, streamed"
        )
        self._batch_size = m.histogram(
            "repro_batch_size",
            "batch width per prefill batch / decode iteration",
            buckets=tuple(float(b) for b in (1, 2, 4, 8, 16, 32, 64, 128)),
        )
        self._link_util = m.gauge(
            "repro_link_utilization",
            "sampled per-link utilisation (links above "
            f"{LINK_GAUGE_MIN_UTIL:.0%} only)",
        )
        self._link_util_kind = m.gauge(
            "repro_link_utilization_by_kind",
            "mean/max sampled utilisation per link kind",
        )
        self._link_util_class = m.histogram(
            "repro_link_utilization_by_class",
            "sampled utilisation distribution per link class "
            "(nvlink / ethernet_access leaders / ethernet_trunk "
            "inter-track)",
            buckets=(0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0, 1.5),
        )
        self._kv_util = m.gauge(
            "repro_kv_cache_utilization", "decode KV cache occupancy"
        )

    # -- request lifecycle --------------------------------------------------

    def request_arrival(self, ts: float, req: "RequestState") -> None:
        self._requests.inc(event="arrival")
        if self.attribution is not None:
            self.attribution.on_arrival(ts, req)
        self.trace.instant(
            "requests",
            "arrival",
            ts,
            request_id=req.request_id,
            input_len=req.input_len,
            output_len=req.output_len,
        )

    def request_dropped(self, ts: float, req: "RequestState") -> None:
        self._requests.inc(event="dropped")
        if self.attribution is not None:
            self.attribution.on_dropped(ts, req)
        self.trace.instant(
            "requests", "dropped", ts, request_id=req.request_id
        )

    def request_finished(self, ts: float, req: "RequestState") -> None:
        """Stream latency histograms and emit the lifecycle swimlane."""
        self._requests.inc(event="finished")
        self._ttft.observe(req.ttft)
        self._tpot.observe(req.tpot)
        if self.slo is not None:
            self.slo.record_request(ts, req)
        if self.attribution is not None:
            self.attribution.on_finished(ts, req)
        t = self.trace
        rid = req.request_id
        _span_if_valid(
            t,
            "requests",
            "queued",
            req.arrival_time,
            req.prefill_start,
            rid,
            request_id=rid,
        )
        _span_if_valid(
            t,
            "requests",
            "prefill",
            req.prefill_start,
            req.first_token_time,
            rid,
            request_id=rid,
            input_len=req.input_len,
        )
        _span_if_valid(
            t,
            "requests",
            "kv_transfer",
            req.first_token_time,
            req.kv_done_time,
            rid,
            request_id=rid,
        )
        _span_if_valid(
            t,
            "requests",
            "decode_wait",
            req.kv_done_time,
            req.decode_start,
            rid,
            request_id=rid,
        )
        _span_if_valid(
            t,
            "requests",
            "decode",
            req.decode_start,
            req.finish_time,
            rid,
            request_id=rid,
            output_len=req.output_len,
            ttft_s=req.ttft,
            tpot_s=req.tpot,
        )

    # -- engine passes -------------------------------------------------------

    def prefill_span(
        self, start: float, dur: float, n_requests: int, tokens: int,
        t_compute: float, t_comm: float,
        request_ids: tuple[int, ...] = (),
    ) -> None:
        self._prefill_batches.inc()
        self._batch_size.observe(n_requests, phase="prefill")
        if self.attribution is not None:
            self.attribution.on_prefill(start, request_ids, t_comm)
        self.trace.complete(
            "prefill",
            f"prefill[{n_requests}r/{tokens}t]",
            start,
            dur,
            n_requests=n_requests,
            tokens=tokens,
            t_compute_s=t_compute,
            t_comm_s=t_comm,
            request_ids=list(request_ids),
        )

    def decode_span(
        self, start: float, dur: float, q: int, context: int,
        t_compute: float, t_comm: float,
        request_ids: tuple[int, ...] = (),
    ) -> None:
        self._decode_iters.inc()
        self._batch_size.observe(q, phase="decode")
        if self.attribution is not None:
            self.attribution.on_decode(request_ids, t_comm)
        self.trace.complete(
            "decode",
            f"decode[q={q}]",
            start,
            dur,
            q=q,
            context_tokens=context,
            t_compute_s=t_compute,
            t_comm_s=t_comm,
            request_ids=list(request_ids),
        )

    def kv_transfer_span(
        self, start: float, dur: float, n_requests: int, tokens: int,
        request_ids: tuple[int, ...] = (),
    ) -> None:
        self._kv_transfers.inc()
        if self.attribution is not None:
            self.attribution.on_kv_span(dur, request_ids)
        self.trace.complete(
            "kv_transfer",
            f"kv[{n_requests}r/{tokens}t]",
            start,
            dur,
            n_requests=n_requests,
            tokens=tokens,
            request_ids=list(request_ids),
        )

    def allreduce_span(
        self,
        phase: str,
        start: float,
        dur: float,
        group: tuple[int, ...],
        policy: str,
        mode: str,
        steps: int,
        data_bytes: float,
        request_ids: tuple[int, ...] = (),
        bottleneck_link: int | None = None,
        bottleneck_kind: str = "",
        bottleneck_util: float = 0.0,
        switch: int | None = None,
    ) -> None:
        """One group's synchronisation slice of a pass, policy-labelled.

        Nested (by timestamps) inside the owning prefill/decode span.
        ``bottleneck_*`` names the most utilised link of the policy's
        footprint at decision time — the congestion it priced against.
        """
        if self.attribution is not None:
            self.attribution.on_allreduce(
                phase,
                request_ids,
                policy,
                dur,
                bottleneck_link,
                bottleneck_kind,
                bottleneck_util,
                switch,
            )
        self.trace.complete(
            "allreduce",
            f"allreduce:{policy}",
            start,
            dur,
            phase=phase,
            group="-".join(str(g) for g in group),
            policy=policy,
            mode=mode,
            steps=steps,
            data_bytes=data_bytes,
            request_ids=list(request_ids),
            bottleneck_link=bottleneck_link,
            bottleneck_kind=bottleneck_kind,
            bottleneck_util=bottleneck_util,
            switch=switch,
        )

    def policy_selected(
        self, group: tuple[int, ...], policy: str, mode: str
    ) -> None:
        self._policy_selections.inc(
            group="-".join(str(g) for g in group), policy=policy, mode=mode
        )

    # -- controller / link state ----------------------------------------------

    def controller_tick(self, ts: float, refreshed: bool) -> None:
        if refreshed:
            self._controller_refreshes.inc()
            self.trace.instant("controller", "refresh", ts)

    def sample_links(self, ts: float, linkstate: "LinkLoadTracker") -> None:
        """Export the monitoring agents' view as gauges/histograms."""
        for kind, (mean_u, max_u) in linkstate.utilization_by_kind().items():
            self._link_util_kind.set(mean_u, kind=kind, stat="mean")
            self._link_util_kind.set(max_u, kind=kind, stat="max")
        for cls, (mean_u, max_u) in (
            linkstate.utilization_by_class().items()
        ):
            self._link_util_class.observe(
                mean_u, link_class=cls, stat="mean"
            )
            self._link_util_class.observe(
                max_u, link_class=cls, stat="max"
            )
        for link_id, kind, util in linkstate.busy_links(
            LINK_GAUGE_MIN_UTIL
        ):
            self._link_util.set(util, link=str(link_id), kind=kind)

    def kv_sample(self, ts: float, used: int, capacity: int) -> None:
        if capacity > 0:
            self._kv_util.set(used / capacity)

    def engine_tick(self, ts: float, sim: "ServingSimulator") -> None:
        """One monitoring-cadence tick: sample the recorder, burn SLOs.

        Called by the engine on the same cadence as ``sample_links`` —
        controller refreshes for HeroServe runs, every Nth EWMA poll for
        baselines — so both run in *simulation* time and observed runs
        stay deterministic.
        """
        if self.recorder is not None:
            self.recorder.sample(ts, sim)
        if self.slo is not None:
            for alert in self.slo.evaluate(ts):
                self._slo_alerts.inc(
                    slo=alert.slo,
                    severity=alert.severity,
                    state=alert.state,
                )
                self.trace.instant(
                    "alerts",
                    f"{alert.severity}:{alert.state}",
                    ts,
                    slo=alert.slo,
                    burn_long=alert.burn_long,
                    burn_short=alert.burn_short,
                    message=alert.message,
                )

    # -- faults / failover ---------------------------------------------------
    #
    # Fault instruments are created lazily on the first fault event, so
    # observed fault-free runs export exactly the same metric names as
    # before the faults subsystem existed.

    def _fault_counter(self, attr: str, name: str, help: str):
        inst = getattr(self, attr, None)
        if inst is None:
            inst = self.metrics.counter(name, help)
            setattr(self, attr, inst)
        return inst

    def fault_injected(self, ts: float, kind: str, target: int) -> None:
        self._fault_counter(
            "_faults_injected",
            "repro_faults_injected_total",
            "fault events applied by the injector, by kind",
        ).inc(kind=kind)
        self.trace.instant("faults", f"inject:{kind}", ts, target=target)
        if self.recorder is not None:
            self.recorder.log_event(ts, "fault_injected", kind=kind,
                                    target=target)

    def health_transition(
        self, ts: float, kind: str, resource: int, state: str,
        detail: str = "",
    ) -> None:
        self._fault_counter(
            "_health_transitions",
            "repro_health_transitions_total",
            "detected resource health edges, by kind and state",
        ).inc(kind=kind, state=state)
        self.trace.instant(
            "faults",
            f"health:{kind}:{state}",
            ts,
            resource=resource,
            detail=detail,
        )
        if self.recorder is not None:
            self.recorder.log_event(
                ts, "health_transition", kind=kind, resource=resource,
                state=state, detail=detail,
            )

    def failover(
        self, ts: float, group: tuple[int, ...], direction: str
    ) -> None:
        self._fault_counter(
            "_failovers",
            "repro_failovers_total",
            "group policy-mask flips (ina->ring and back)",
        ).inc(direction=direction)
        self.trace.instant(
            "faults",
            f"failover:{direction}",
            ts,
            group="-".join(str(g) for g in group),
        )
        if self.recorder is not None:
            self.recorder.log_event(
                ts, "failover",
                group="-".join(str(g) for g in group),
                direction=direction,
            )

    def kv_retry(
        self, ts: float, attempt: int, delay: float,
        request_ids: tuple[int, ...] = (),
    ) -> None:
        self._fault_counter(
            "_kv_retries",
            "repro_kv_transfer_retries_total",
            "KV transfers deferred by backoff while decode unreachable",
        ).inc()
        if self.attribution is not None:
            self.attribution.on_kv_retry(request_ids)
        self.trace.instant(
            "faults",
            "kv_retry",
            ts,
            attempt=attempt,
            delay_s=delay,
            request_ids=list(request_ids),
        )

    def requests_requeued(
        self, ts: float, n: int, request_ids: tuple[int, ...] = ()
    ) -> None:
        self._fault_counter(
            "_requeued",
            "repro_requests_requeued_total",
            "requests that lost progress to a failure and redo prefill",
        ).inc(n)
        if self.attribution is not None:
            self.attribution.on_requeued(request_ids)
        self.trace.instant(
            "faults",
            "requeue",
            ts,
            n_requests=n,
            request_ids=list(request_ids),
        )
        if self.recorder is not None:
            self.recorder.log_event(ts, "requests_requeued", n=n)

    # -- online replanning ---------------------------------------------------

    def replan_event(self, ts: float, event: str, **detail) -> None:
        """One online-replanning lifecycle event (trigger, phase edge,
        cutover, rollback, suppression).

        ``detail`` must be JSON-serialisable; events land in the flight
        recorder's event stream, from which the report's "Plan
        transitions" timeline is built.
        """
        self._fault_counter(
            "_replan_events",
            "repro_replan_events_total",
            "online-replanning lifecycle events, by kind",
        ).inc(event=event)
        self.trace.instant("replan", event, ts, **detail)
        if self.recorder is not None:
            self.recorder.log_event(ts, event, **detail)

    def route_decision(
        self,
        ts: float,
        request_id: int,
        replica: int,
        router: str,
        reason: str,
        affinity_hit: bool | None = None,
        kv_fetch_bytes: float = 0.0,
    ) -> None:
        """One fleet routing decision (per request; recorder-bound).

        Counted by (router, reason); the full decision — including
        whether a session turn hit its KV-resident replica and how many
        resident bytes a miss dragged across the fabric — lands in the
        flight recorder's JSONL event stream as ``routing_decision``.
        Lazily instrumented like the fault counters, so fleets routed
        before the router layer existed export identical metric names.
        """
        self._fault_counter(
            "_route_decisions",
            "repro_route_decisions_total",
            "fleet routing decisions, by policy and reason",
        ).inc(router=router, reason=reason)
        if self.recorder is not None:
            detail: dict = {
                "request_id": request_id,
                "replica": replica,
                "router": router,
                "reason": reason,
            }
            if affinity_hit is not None:
                detail["affinity_hit"] = affinity_hit
            if kv_fetch_bytes:
                detail["kv_fetch_bytes"] = kv_fetch_bytes
            self.recorder.log_event(ts, "routing_decision", **detail)

    def fleet_all_degraded(self, ts: float, n_replicas: int) -> None:
        """Edge-triggered: every active replica is degraded at once, so
        the router fell back to least-backlog over degraded replicas."""
        self._fault_counter(
            "_fleet_all_degraded",
            "repro_fleet_all_degraded_total",
            "router fallbacks with every active replica degraded",
        ).inc()
        self.trace.instant(
            "faults", "fleet_all_degraded", ts, n_replicas=n_replicas
        )
        if self.recorder is not None:
            self.recorder.log_event(
                ts, "fleet_all_degraded", n_replicas=n_replicas
            )

    # -- run boundary --------------------------------------------------------

    def run_finished(self, ts: float, sim: "ServingSimulator") -> None:
        """End of a standalone engine run: attach derived summaries.

        When an attribution collector is present its fleet-wide
        critical-path budget is folded into the run's
        :class:`~repro.serving.metrics.ServingMetrics` (``cp_*`` summary
        keys). Absent one, this hook changes nothing — summaries stay
        byte-identical.
        """
        if self.attribution is not None and self.attribution.finished:
            sim.metrics.attribution_stats = (
                self.attribution.fleet_summary()
            )

    # -- profiling ----------------------------------------------------------

    def phase(self, name: str):
        """Wall-clock phase timer (planner/grouping phases)."""
        return self.profiler.phase(name)

    # -- export ---------------------------------------------------------------

    def export(
        self,
        trace_path: str | None = None,
        metrics_path: str | None = None,
    ) -> None:
        """Write collected telemetry to disk.

        ``trace_path`` ending in ``.jsonl`` gets the line-oriented dump;
        anything else gets Chrome-trace JSON (loadable in
        ``chrome://tracing`` / Perfetto). ``metrics_path`` gets the JSON
        snapshot, or the text exposition when it ends in ``.txt`` /
        ``.prom``. With a flight recorder attached, the metrics dump
        additionally carries a ``busiest_links`` table (peak sampled
        utilisation per link over the whole recording); recorder-less
        dumps are unchanged.
        """
        if trace_path is not None:
            if trace_path.endswith(".jsonl"):
                self.trace.write_jsonl(trace_path)
            else:
                self.trace.write_chrome(trace_path)
        if metrics_path is not None:
            busiest = (
                self.recorder.top_links()
                if self.recorder is not None and len(self.recorder)
                else []
            )
            if metrics_path.endswith((".txt", ".prom")):
                text = self.metrics.render_text()
                if busiest:
                    rows = [
                        "# busiest links (peak sampled utilisation)"
                    ] + [
                        f"# link {lid} [{kind}] {util:.3f}"
                        for lid, kind, util in busiest
                    ]
                    text += "\n".join(rows) + "\n"
                with open(metrics_path, "w") as fh:
                    fh.write(text)
            elif busiest:
                payload = self.metrics.snapshot()
                payload["busiest_links"] = [
                    {"link": lid, "kind": kind, "peak_util": util}
                    for lid, kind, util in busiest
                ]
                with open(metrics_path, "w") as fh:
                    json.dump(payload, fh, indent=2)
                    fh.write("\n")
            else:
                self.metrics.write_json(metrics_path)


class NullObserver:
    """Disabled observer: every hook is a no-op.

    The default on every config/constructor, so existing call sites and
    benchmarks pay only an attribute check (``obs.enabled``) or an empty
    method call when observability is off.
    """

    enabled = False
    trace = None
    metrics = None
    profiler = NULL_PROFILER
    slo = None
    recorder = None
    attribution = None
    selfprof = None

    def request_arrival(self, ts, req) -> None:
        pass

    def request_dropped(self, ts, req) -> None:
        pass

    def request_finished(self, ts, req) -> None:
        pass

    def prefill_span(self, *args, **kwargs) -> None:
        pass

    def decode_span(self, *args, **kwargs) -> None:
        pass

    def kv_transfer_span(self, *args, **kwargs) -> None:
        pass

    def allreduce_span(self, *args, **kwargs) -> None:
        pass

    def policy_selected(self, group, policy, mode) -> None:
        pass

    def controller_tick(self, ts, refreshed) -> None:
        pass

    def sample_links(self, ts, linkstate) -> None:
        pass

    def kv_sample(self, ts, used, capacity) -> None:
        pass

    def engine_tick(self, ts, sim) -> None:
        pass

    def fault_injected(self, ts, kind, target) -> None:
        pass

    def health_transition(
        self, ts, kind, resource, state, detail=""
    ) -> None:
        pass

    def failover(self, ts, group, direction) -> None:
        pass

    def kv_retry(self, ts, attempt, delay, request_ids=()) -> None:
        pass

    def requests_requeued(self, ts, n, request_ids=()) -> None:
        pass

    def replan_event(self, ts, event, **detail) -> None:
        pass

    def route_decision(
        self,
        ts,
        request_id,
        replica,
        router,
        reason,
        affinity_hit=None,
        kv_fetch_bytes=0.0,
    ) -> None:
        pass

    def fleet_all_degraded(self, ts, n_replicas) -> None:
        pass

    def run_finished(self, ts, sim) -> None:
        pass

    def phase(self, name: str):
        return NULL_PROFILER.phase(name)

    def export(self, trace_path=None, metrics_path=None) -> None:
        pass


#: Shared default instance (stateless, safe to share across engines).
NULL_OBSERVER = NullObserver()
