"""Background cross-traffic injector.

Section II motivates HeroServe with INA throughput collapse "under bursty
traffic conditions": other tenants' flows share the Ethernet fabric and
congest the aggregation paths. This injector registers on/off bursts of
load on random Ethernet links of the topology — the multi-tenant noise
against which Fig. 9's aggregation throughput is measured.

The injector can subscribe to the SLO monitor's
:class:`~repro.obs.slo.AlertSink`: while a page burn-rate alert is
firing, new bursts run at a reduced intensity for a cooldown period —
the cooperative-tenant knob (deprioritise best-effort traffic when the
serving SLO is burning) that lets experiments separate "network noise
caused the violation" from "the violation persisted regardless".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.linkstate import LinkLoadTracker
from repro.network.topology import LinkKind, Topology
from repro.sim.eventqueue import EventQueue
from repro.util.rng import make_rng


@dataclass
class BackgroundTrafficConfig:
    """Burst process parameters."""

    #: average fraction of each burst-affected link's capacity consumed
    intensity: float = 0.5
    #: mean seconds between burst starts (exponential)
    mean_gap: float = 0.5
    #: mean burst duration (exponential)
    mean_duration: float = 0.3
    #: links touched per burst
    links_per_burst: int = 4
    #: intensity multiplier applied while an SLO page alert throttle is
    #: active (1.0 disables alert-driven backoff)
    throttle_factor: float = 0.5
    #: seconds the throttle persists after the page alert fires
    throttle_cooldown: float = 30.0


class BackgroundTraffic:
    """Registers random bursts of load on Ethernet links via DES events."""

    def __init__(
        self,
        topology: Topology,
        linkstate: LinkLoadTracker,
        queue: EventQueue,
        config: BackgroundTrafficConfig | None = None,
        seed: int | None = None,
    ) -> None:
        self.topology = topology
        self.linkstate = linkstate
        self.queue = queue
        self.cfg = config or BackgroundTrafficConfig()
        if not 0.0 <= self.cfg.intensity <= 1.0:
            raise ValueError("intensity must be in [0, 1]")
        self.rng = make_rng(seed)
        kinds = topology.kind_array()
        self._eth = np.where(kinds == int(LinkKind.ETHERNET))[0]
        if self._eth.size == 0:
            raise ValueError("topology has no Ethernet links to congest")
        self.bursts_started = 0
        self.bursts_throttled = 0
        self._throttle_until = float("-inf")

    # -- SLO alert subscription --------------------------------------------

    def subscribe(self, sink) -> None:
        """Attach to an :class:`~repro.obs.slo.AlertSink`."""
        sink.subscribe(self.on_alert)

    def on_alert(self, alert) -> None:
        """Back off new bursts while the serving SLO is page-burning."""
        if alert.severity == "page" and alert.firing:
            self._throttle_until = max(
                self._throttle_until,
                alert.time + self.cfg.throttle_cooldown,
            )

    def _effective_intensity(self) -> float:
        if self.queue.now < self._throttle_until:
            self.bursts_throttled += 1
            return self.cfg.intensity * self.cfg.throttle_factor
        return self.cfg.intensity

    def start(self, horizon: float) -> None:
        """Schedule the burst process on [now, now + horizon)."""
        self._schedule_next(horizon_end=self.queue.now + horizon)

    def _schedule_next(self, horizon_end: float) -> None:
        gap = float(self.rng.exponential(self.cfg.mean_gap))
        t = self.queue.now + gap
        if t >= horizon_end:
            return
        self.queue.schedule(gap, self._burst, horizon_end, tag="bg_burst")

    def _burst(self, horizon_end: float) -> None:
        k = min(self.cfg.links_per_burst, self._eth.size)
        links = self.rng.choice(self._eth, size=k, replace=False)
        caps = self.linkstate.capacity[links]
        intensity = self._effective_intensity()
        handles = [
            self.linkstate.register([int(l)], intensity * float(c))
            for l, c in zip(links, caps)
        ]
        self.bursts_started += 1
        dur = float(self.rng.exponential(self.cfg.mean_duration))
        self.queue.schedule(dur, self._burst_end, handles, tag="bg_end")
        self._schedule_next(horizon_end)

    def _burst_end(self, handles: list[int]) -> None:
        for h in handles:
            self.linkstate.release(h)
