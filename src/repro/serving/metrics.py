"""Serving metrics: TTFT/TPOT distributions, SLA attainment, memory.

The evaluation quantities of Section V:

* **SLA attainment** — fraction of finished requests meeting both the
  TTFT and TPOT bounds; the scalability experiments report the maximum
  per-GPU rate sustaining >= 90 % attainment.
* **latency** — mean/percentile TTFT and TPOT (Fig. 7b/d, Fig. 8 lower).
* **memory efficiency** — KV-cache utilisation over time (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.objective import SlaSpec
from repro.serving.request import RequestState

#: Attainment threshold used throughout the paper's scalability results.
SLA_ATTAINMENT_TARGET = 0.9


@dataclass
class MemorySample:
    """One KV-memory occupancy observation."""

    time: float
    used_tokens: int
    capacity_tokens: int

    @property
    def utilization(self) -> float:
        if self.capacity_tokens <= 0:
            return float("nan")
        return self.used_tokens / self.capacity_tokens


@dataclass
class FaultStats:
    """Fault/failover accounting attached by :mod:`repro.faults`.

    Present only when a (non-empty) fault plan ran — fault-free runs
    keep ``ServingMetrics.fault_stats`` as ``None`` so their summaries
    stay byte-identical to builds without the faults subsystem.
    """

    faults_injected: int = 0
    failovers: int = 0
    #: requests whose in-flight progress was lost to a server failure
    requests_lost: int = 0
    kv_retries: int = 0
    #: requests abandoned after exhausting the KV-transfer retry budget
    kv_exhausted: int = 0
    prefill_redos: int = 0
    slot_exhausted: int = 0
    replans: int = 0
    #: detected outage episodes (closed or still open at run end)
    episodes: int = 0
    mttr_s: float = float("nan")
    degraded_seconds: float = 0.0

    def summary(self) -> dict[str, float]:
        return {
            "faults_injected": float(self.faults_injected),
            "failovers": float(self.failovers),
            "requests_lost": float(self.requests_lost),
            "kv_retries": float(self.kv_retries),
            "kv_exhausted": float(self.kv_exhausted),
            "prefill_redos": float(self.prefill_redos),
            "slot_exhausted": float(self.slot_exhausted),
            "replans": float(self.replans),
            "fault_episodes": float(self.episodes),
            "mttr_s": self.mttr_s,
            "degraded_seconds": self.degraded_seconds,
        }


@dataclass
class RouterStats:
    """Fleet-router accounting: session residency, KV movement, QoE.

    Filled by :class:`~repro.serving.fleet.ReplicaFleet` as it routes;
    attached to :class:`~repro.serving.fleet.FleetMetrics` at run end.
    Counters only advance for session-tagged requests, so single-shot
    traces report all-zero router stats regardless of policy.
    """

    #: registry name of the policy that produced these numbers
    router: str = "jsq"
    #: first turns (no residency yet; excluded from the hit rate)
    new_sessions: int = 0
    #: follow-up turns routed to the replica already holding their KV
    affinity_hits: int = 0
    #: follow-up turns routed away from their KV-resident replica
    affinity_misses: int = 0
    #: misses that actually moved bytes (a zero-cost migration is free)
    kv_fetches: int = 0
    #: resident-KV bytes dragged across the fabric by misses
    kv_bytes_moved: float = 0.0
    #: resident-KV bytes hits kept in place (counterfactual transfer)
    kv_bytes_saved: float = 0.0
    #: total seconds follow-up turns waited on resident-KV fetches
    kv_fetch_wait_s: float = 0.0

    def hit_rate(self) -> float | None:
        """Affinity hit rate over follow-up turns.

        ``None`` on sessionless traces (no follow-up turns exist to hit
        or miss) — never NaN, which would poison JSON dumps and the
        HTML report's embedded data.
        """
        turns = self.affinity_hits + self.affinity_misses
        if turns == 0:
            return None
        return self.affinity_hits / turns

    def summary(self) -> dict[str, float]:
        """Flat ``router_*`` keys for the benchmark tables.

        ``router_affinity_hit_rate`` is omitted when undefined
        (sessionless trace); report renderers show "n/a" for the
        missing key.
        """
        out = {
            "router_new_sessions": float(self.new_sessions),
            "router_affinity_hits": float(self.affinity_hits),
            "router_affinity_misses": float(self.affinity_misses),
            "router_kv_fetches": float(self.kv_fetches),
            "router_kv_bytes_moved": self.kv_bytes_moved,
            "router_kv_bytes_saved": self.kv_bytes_saved,
            "router_kv_fetch_wait_s": self.kv_fetch_wait_s,
        }
        rate = self.hit_rate()
        if rate is not None:
            out["router_affinity_hit_rate"] = rate
        return out


@dataclass
class ServingMetrics:
    """Accumulator filled by the simulator, reduced after the run."""

    sla: SlaSpec
    finished: list[RequestState] = field(default_factory=list)
    memory_timeline: list[MemorySample] = field(default_factory=list)
    #: diagnostic counters
    prefill_batches: int = 0
    decode_iterations: int = 0
    dropped: int = 0
    #: set by the fault injector when a non-empty fault plan ran
    fault_stats: FaultStats | None = None
    #: flat ``cp_*`` critical-path budget keys, attached by the
    #: observer's ``run_finished`` hook when an
    #: :class:`~repro.obs.attribution.AttributionCollector` was present
    #: — ``None`` otherwise, keeping summaries byte-identical
    attribution_stats: dict[str, float] | None = None
    #: flat ``replan_*`` transition-accounting keys attached by the
    #: :class:`~repro.core.replan.OnlineReplanner` at run end — ``None``
    #: when online replanning is not armed, so plain runs stay
    #: byte-identical
    replan_stats: dict[str, float] | None = None

    def record_finish(self, req: RequestState) -> None:
        self.finished.append(req)

    def record_memory(
        self, time: float, used_tokens: int, capacity_tokens: int
    ) -> None:
        self.memory_timeline.append(
            MemorySample(time, used_tokens, capacity_tokens)
        )

    # -- reductions ---------------------------------------------------------

    def _arr(self, attr: str) -> np.ndarray:
        return np.array([getattr(r, attr) for r in self.finished])

    @property
    def n_finished(self) -> int:
        return len(self.finished)

    def attainment(self) -> float:
        """Fraction of finished requests meeting both SLOs."""
        if not self.finished:
            return 0.0
        ok = sum(
            r.meets_sla(self.sla.ttft, self.sla.tpot) for r in self.finished
        )
        return ok / len(self.finished)

    def mean_ttft(self) -> float:
        return float(self._arr("ttft").mean()) if self.finished else float("nan")

    def mean_tpot(self) -> float:
        return float(self._arr("tpot").mean()) if self.finished else float("nan")

    def p50_ttft(self) -> float:
        if not self.finished:
            return float("nan")
        return float(np.percentile(self._arr("ttft"), 50))

    def p50_tpot(self) -> float:
        if not self.finished:
            return float("nan")
        return float(np.percentile(self._arr("tpot"), 50))

    def p90_ttft(self) -> float:
        if not self.finished:
            return float("nan")
        return float(np.percentile(self._arr("ttft"), 90))

    def p90_tpot(self) -> float:
        if not self.finished:
            return float("nan")
        return float(np.percentile(self._arr("tpot"), 90))

    def p99_ttft(self) -> float:
        """Tail TTFT — the SLO-burn view production dashboards watch."""
        if not self.finished:
            return float("nan")
        return float(np.percentile(self._arr("ttft"), 99))

    def p99_tpot(self) -> float:
        if not self.finished:
            return float("nan")
        return float(np.percentile(self._arr("tpot"), 99))

    def ttft_attainment(self) -> float:
        """Fraction of finished requests meeting the TTFT bound alone."""
        if not self.finished:
            return 0.0
        return float((self._arr("ttft") <= self.sla.ttft).mean())

    def tpot_attainment(self) -> float:
        """Fraction of finished requests meeting the TPOT bound alone."""
        if not self.finished:
            return 0.0
        return float((self._arr("tpot") <= self.sla.tpot).mean())

    def mean_memory_utilization(self) -> float:
        if not self.memory_timeline:
            return float("nan")
        return float(
            np.mean([s.utilization for s in self.memory_timeline])
        )

    def peak_memory_utilization(self) -> float:
        if not self.memory_timeline:
            return float("nan")
        return float(
            np.max([s.utilization for s in self.memory_timeline])
        )

    def summary(self) -> dict[str, float]:
        """Flat dict used by the benchmark tables.

        Fault keys (MTTR, requests lost, degraded seconds, ...) appear
        only when a fault plan actually ran; ``replan_*`` transition
        keys only when online replanning was armed; ``cp_*``
        critical-path budget keys only when an attribution collector
        was attached.
        """
        out = {
            "finished": float(self.n_finished),
            "dropped": float(self.dropped),
            "attainment": self.attainment(),
            "ttft_attainment": self.ttft_attainment(),
            "tpot_attainment": self.tpot_attainment(),
            "mean_ttft_s": self.mean_ttft(),
            "p50_ttft_s": self.p50_ttft(),
            "p90_ttft_s": self.p90_ttft(),
            "p99_ttft_s": self.p99_ttft(),
            "mean_tpot_s": self.mean_tpot(),
            "p50_tpot_s": self.p50_tpot(),
            "p90_tpot_s": self.p90_tpot(),
            "p99_tpot_s": self.p99_tpot(),
            "mean_mem_util": self.mean_memory_utilization(),
            "prefill_batches": float(self.prefill_batches),
            "decode_iterations": float(self.decode_iterations),
        }
        if self.fault_stats is not None:
            out.update(self.fault_stats.summary())
        if self.replan_stats is not None:
            out.update(self.replan_stats)
        if self.attribution_stats is not None:
            out.update(self.attribution_stats)
        return out
