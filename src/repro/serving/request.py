"""Per-request lifecycle state inside the serving simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.workloads.traces import TraceRequest


class RequestPhase(enum.Enum):
    """Lifecycle stages of a request in the disaggregated pipeline."""

    QUEUED = "queued"              # waiting for a prefill slot
    PREFILLING = "prefilling"
    KV_TRANSFER = "kv_transfer"    # KV cache moving to the decode cluster
    DECODE_WAIT = "decode_wait"    # waiting for decode KV memory
    DECODING = "decoding"
    FINISHED = "finished"


@dataclass
class RequestState:
    """Mutable tracking record for one in-flight request."""

    trace: TraceRequest
    phase: RequestPhase = RequestPhase.QUEUED
    prefill_start: float = field(default=float("nan"))
    first_token_time: float = field(default=float("nan"))
    kv_done_time: float = field(default=float("nan"))
    decode_start: float = field(default=float("nan"))
    finish_time: float = field(default=float("nan"))
    tokens_generated: int = 0

    @property
    def request_id(self) -> int:
        return self.trace.request_id

    @property
    def arrival_time(self) -> float:
        return self.trace.arrival_time

    @property
    def input_len(self) -> int:
        return self.trace.input_len

    @property
    def output_len(self) -> int:
        return self.trace.output_len

    @property
    def kv_tokens(self) -> int:
        """KV-cache tokens this request reserves in the decode cluster.

        Conservative vLLM-style reservation: prompt plus full output, so
        admission never has to preempt mid-generation.
        """
        return self.input_len + self.output_len

    @property
    def done(self) -> bool:
        return self.phase == RequestPhase.FINISHED

    # -- derived metrics ---------------------------------------------------

    @property
    def ttft(self) -> float:
        """Time-to-first-token: arrival -> end of prefill."""
        return self.first_token_time - self.arrival_time

    @property
    def tpot(self) -> float:
        """Mean time-per-output-token over the decode phase."""
        n = max(self.output_len - 1, 1)
        return (self.finish_time - self.first_token_time) / n

    @property
    def latency(self) -> float:
        """End-to-end request latency."""
        return self.finish_time - self.arrival_time

    def meets_sla(self, ttft_sla: float, tpot_sla: float) -> bool:
        """Whether both latency SLOs were met."""
        return self.ttft <= ttft_sla and self.tpot <= tpot_sla
