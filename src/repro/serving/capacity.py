"""Capacity search: maximum per-GPU rate under the SLA attainment target.

Section V-A: "we focus on the maximum per-GPU rate that the system can
handle while satisfying the latency requirements for over 90% of
requests." :func:`find_max_rate` binary-searches the arrival rate,
running the serving simulator at each probe; :func:`rate_sweep` produces
the full attainment-vs-rate curve a Fig. 7-style plot shows.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.serving.metrics import SLA_ATTAINMENT_TARGET, ServingMetrics

#: A probe run must finish at least this fraction of its trace to count
#: (otherwise the system is hopelessly saturated and attainment over the
#: few finished requests would be misleadingly high).
MIN_COMPLETION_FRACTION = 0.8


@dataclass(frozen=True)
class RatePoint:
    """One (rate, metrics) sample of a sweep."""

    rate: float
    attainment: float
    mean_ttft: float
    mean_tpot: float
    finished: int
    offered: int

    @property
    def completion(self) -> float:
        return self.finished / self.offered if self.offered else 0.0


RunAtRate = Callable[[float], tuple[ServingMetrics, int]]
"""Run the system at a rate; returns (metrics, offered request count)."""


def evaluate_rate(run: RunAtRate, rate: float) -> RatePoint:
    """Execute one probe and reduce it to a :class:`RatePoint`."""
    metrics, offered = run(rate)
    return RatePoint(
        rate=rate,
        attainment=metrics.attainment(),
        mean_ttft=metrics.mean_ttft(),
        mean_tpot=metrics.mean_tpot(),
        finished=metrics.n_finished,
        offered=offered,
    )


def _passes(pt: RatePoint, target: float) -> bool:
    return (
        pt.attainment >= target
        and pt.completion >= MIN_COMPLETION_FRACTION
    )


def find_max_rate(
    run: RunAtRate,
    lo: float,
    hi: float,
    target: float = SLA_ATTAINMENT_TARGET,
    iterations: int = 7,
) -> tuple[float, list[RatePoint]]:
    """Max rate with attainment >= target, by bisection on [lo, hi].

    Returns (max passing rate, all probe points). If even ``lo`` fails,
    returns (0, probes); if ``hi`` passes, returns (hi, probes) — widen
    the bracket in that case.
    """
    if not 0 < lo < hi:
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    probes: list[RatePoint] = []
    pt_lo = evaluate_rate(run, lo)
    probes.append(pt_lo)
    if not _passes(pt_lo, target):
        return 0.0, probes
    pt_hi = evaluate_rate(run, hi)
    probes.append(pt_hi)
    if _passes(pt_hi, target):
        return hi, probes
    best = lo
    a, b = lo, hi
    for _ in range(iterations):
        mid = 0.5 * (a + b)
        pt = evaluate_rate(run, mid)
        probes.append(pt)
        if _passes(pt, target):
            best, a = mid, mid
        else:
            b = mid
    return best, probes


def rate_sweep(
    run: RunAtRate, rates: list[float]
) -> list[RatePoint]:
    """Evaluate a fixed grid of rates (for attainment-curve figures)."""
    return [evaluate_rate(run, r) for r in rates]
