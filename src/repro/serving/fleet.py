"""Replica fleets: several deployments sharing one fabric, one router.

The paper's large-scale setting serves many model instances on one
cluster; their traffic shares the Ethernet fabric, which is exactly the
multi-tenant congestion HeroServe's scheduling is built for. A
:class:`ReplicaFleet` runs several :class:`ServingSimulator` deployments
on **one** event queue and **one** link-load tracker, so replicas'
synchronisation, KV transfers and pipeline traffic contend.

Arriving requests are dispatched by a pluggable routing policy from
:mod:`repro.serving.router` (``jsq`` — the historical join-shortest-
queue — by default, byte-identical to the pre-router fleet). The fleet
itself owns everything a policy must not be able to get wrong:

* **candidate filtering** — inactive replicas are never offered;
  degraded replicas are skipped while any healthy active replica
  exists, with an edge-triggered ``fleet_all_degraded`` event when the
  router is forced onto an all-degraded fleet;
* **session KV residency** — which replica holds each conversation's
  KV cache (the serving-layer prefix cache), updated on every routed
  turn;
* **KV-fetch accounting** — when a session turn lands on a replica
  other than its KV holder, the resident KV must cross the fabric
  first: the fleet prices the migration through the live link state
  (Eq. 14/15 machinery), registers the flows on the shared tracker so
  they contend with serving traffic, delays the request's admission by
  the transfer time, and books the moved bytes into
  :class:`~repro.serving.metrics.RouterStats`.

The fleet is also the substrate for §VII's "rapid scaling in and out"
(see :mod:`repro.serving.autoscale`): replicas can be deactivated
(drained — no new requests routed, in-flight ones finish) and
reactivated at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.kvtransfer import (
    estimate_kv_transfer_time,
    plan_kv_migration,
)
from repro.llm.memory import kv_bytes_per_token
from repro.serving.engine import ServingSimulator
from repro.serving.metrics import RouterStats, ServingMetrics
from repro.serving.router import Router, get_qos, get_router
from repro.sim.eventqueue import EventQueue
from repro.workloads.traces import Trace, TraceRequest


@dataclass
class FleetMetrics:
    """Aggregated view over per-replica metrics.

    ``summary()`` flattens the fleet-level quantities the benchmarks
    table (see docs/OBSERVABILITY.md for the key reference); the
    ``router_*`` keys come from the attached :class:`RouterStats` and
    are present whenever the fleet ran with its router layer (always,
    since PR 9) — they are all-zero for session-less traces.
    """

    per_replica: list[ServingMetrics]
    routed: list[int]
    #: router accounting for the run (None only if constructed by hand)
    router_stats: RouterStats | None = None

    def all_finished(self):
        return [r for m in self.per_replica for r in m.finished]

    @property
    def n_finished(self) -> int:
        return sum(m.n_finished for m in self.per_replica)

    def attainment(self) -> float:
        finished = self.all_finished()
        if not finished:
            return 0.0
        sla = self.per_replica[0].sla
        ok = sum(r.meets_sla(sla.ttft, sla.tpot) for r in finished)
        return ok / len(finished)

    def qos_attainment(self) -> dict[str, float]:
        """Per-QoE-class attainment under class-scaled SLO bounds.

        Each class is judged against ``slo_scale`` times the deployment
        SLO (interactive tighter, batch looser) — the per-class SLO
        weighting of :mod:`repro.serving.router`. Only classes present
        in the trace appear.
        """
        finished = self.all_finished()
        if not finished:
            return {}
        sla = self.per_replica[0].sla
        by_class: dict[str, list] = {}
        for r in finished:
            by_class.setdefault(
                getattr(r.trace, "qos", "standard"), []
            ).append(r)
        out: dict[str, float] = {}
        for name, reqs in sorted(by_class.items()):
            scale = get_qos(name).slo_scale
            ok = sum(
                r.meets_sla(sla.ttft * scale, sla.tpot * scale)
                for r in reqs
            )
            out[name] = ok / len(reqs)
        return out

    def _arr(self, attr: str) -> np.ndarray:
        return np.array([getattr(r, attr) for r in self.all_finished()])

    def mean_ttft(self) -> float:
        finished = self.all_finished()
        if not finished:
            return float("nan")
        return sum(r.ttft for r in finished) / len(finished)

    def mean_tpot(self) -> float:
        finished = self.all_finished()
        if not finished:
            return float("nan")
        return sum(r.tpot for r in finished) / len(finished)

    def p50_ttft(self) -> float:
        if not self.all_finished():
            return float("nan")
        return float(np.percentile(self._arr("ttft"), 50))

    def p99_ttft(self) -> float:
        """Tail TTFT across the whole fleet — the routing-policy view."""
        if not self.all_finished():
            return float("nan")
        return float(np.percentile(self._arr("ttft"), 99))

    def p99_tpot(self) -> float:
        if not self.all_finished():
            return float("nan")
        return float(np.percentile(self._arr("tpot"), 99))

    def summary(self) -> dict[str, float]:
        """Flat dict for tables: fleet aggregates + ``router_*`` keys."""
        out = {
            "replicas": float(len(self.per_replica)),
            "finished": float(self.n_finished),
            "attainment": self.attainment(),
            "mean_ttft_s": self.mean_ttft(),
            "p50_ttft_s": self.p50_ttft(),
            "p99_ttft_s": self.p99_ttft(),
            "mean_tpot_s": self.mean_tpot(),
            "p99_tpot_s": self.p99_tpot(),
        }
        if self.router_stats is not None:
            out.update(self.router_stats.summary())
        return out


@dataclass
class ReplicaFleet:
    """Several deployments, one fabric, one clock, one router."""

    replicas: list[ServingSimulator]
    queue: EventQueue
    active: list[bool] = field(default_factory=list)
    routed: list[int] = field(default_factory=list)
    #: observability sink for router-level events; defaults to the first
    #: replica's observer (the fleet-shared one in every current caller)
    observer: object = None
    #: routing policy: a registry name, a :class:`Router` instance, or
    #: None for the default (``jsq``, the pre-router behaviour)
    router: Router | str | None = None
    #: session KV residency: session_id -> [holder replica, resident
    #: KV tokens]; grown by every routed turn of the session
    sessions: dict[int, list] = field(
        default_factory=dict, repr=False
    )
    router_stats: RouterStats = field(
        default_factory=RouterStats, repr=False
    )
    _all_degraded: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError("fleet needs at least one replica")
        for sim in self.replicas:
            if sim.queue is not self.queue:
                raise ValueError(
                    "all replicas must share the fleet's event queue"
                )
        if not self.active:
            self.active = [True] * len(self.replicas)
        if not self.routed:
            self.routed = [0] * len(self.replicas)
        if self.observer is None:
            self.observer = self.replicas[0].obs
        self.router = get_router(self.router)
        self.router_stats.router = self.router.name

    # -- shared context shortcuts -----------------------------------------

    @property
    def ctx(self):
        """The fleet-shared :class:`~repro.comm.context.CommContext`."""
        return self.replicas[0].ctx

    @property
    def model(self):
        """The served model (identical across replicas)."""
        return self.replicas[0].model

    # -- scaling hooks -----------------------------------------------------

    @property
    def n_active(self) -> int:
        return sum(self.active)

    def set_active(self, idx: int, value: bool) -> None:
        """(De)activate a replica; deactivation drains, never kills."""
        if not 0 <= idx < len(self.replicas):
            raise IndexError(f"no replica {idx}")
        if not value and self.n_active == 1 and self.active[idx]:
            raise ValueError("cannot deactivate the last active replica")
        self.active[idx] = value

    # -- router-facing state views ----------------------------------------

    def session_holder(
        self, session_id: int | None
    ) -> tuple[int, int] | None:
        """(holder replica, resident KV tokens) for a session, if any."""
        if session_id is None:
            return None
        rec = self.sessions.get(session_id)
        if rec is None:
            return None
        return rec[0], rec[1]

    def estimate_fetch_time(
        self, holder: int, tokens: int, dst: int
    ) -> float:
        """Live-priced seconds to move resident KV from holder to dst.

        Zero when the destination already holds the KV or nothing is
        resident; otherwise the Eq. 14/15 migration estimate between
        the two decode placements under current link load.
        """
        if holder == dst or tokens <= 0:
            return 0.0
        duration, _, _ = plan_kv_migration(
            self.ctx,
            self.model,
            tokens,
            self.replicas[holder].decode_stages,
            self.replicas[dst].decode_stages,
        )
        return duration

    def internal_kv_time(self, idx: int, k_in: int) -> float:
        """Live-priced prefill→decode KV handoff inside one replica.

        The per-request cost a network-aware policy charges a replica
        whose internal KV path the fabric is currently squeezing.
        """
        sim = self.replicas[idx]
        return estimate_kv_transfer_time(
            sim.ctx,
            sim.model,
            max(1, k_in),
            sim.prefill_stages,
            sim.decode_stages,
        )

    def kv_path_headroom(self, idx: int) -> float:
        """Free fraction of the bottleneck on a replica's KV path.

        Representative path: first prefill GPU to first decode GPU.
        1.0 when the path is entirely intra-GPU or no tracker is live.
        """
        sim = self.replicas[idx]
        ctx = sim.ctx
        if ctx.linkstate is None:
            return 1.0
        src = sim.prefill_stages[0][0]
        dst = sim.decode_stages[0][0]
        links = ctx.path_links(src, dst)
        if not links:
            return 1.0
        avail = ctx.linkstate.available()
        caps = ctx.linkstate.capacity
        return min(
            float(avail[lid]) / float(caps[lid]) for lid in links
        )

    # -- routing -------------------------------------------------------------

    def route(self, tr: TraceRequest) -> int:
        """Dispatch one request through the fleet's routing policy.

        The fleet filters candidates first: inactive replicas are never
        offered, and replicas currently degraded by an injected fault
        (a failed prefill/decode server) are skipped while any healthy
        active replica exists; when every active replica is
        simultaneously degraded the candidate set falls back to the
        degraded replicas (requests queue rather than drop) and an
        edge-triggered ``fleet_all_degraded`` flight-recorder event
        fires. The policy then picks one candidate; session turns that
        land away from their KV-resident replica pay a live-priced KV
        fetch (flows registered on the shared tracker, admission
        delayed) before entering the replica.
        """
        candidates = [
            i for i, a in enumerate(self.active) if a
        ]
        if not candidates:
            # Defensive: set_active refuses to drain the last replica,
            # but an externally mutated mask must still route somewhere.
            candidates = list(range(len(self.replicas)))
        healthy = [
            i for i in candidates if not self.replicas[i].degraded
        ]
        if healthy:
            candidates = healthy
            self._all_degraded = False
        elif not self._all_degraded:
            self._all_degraded = True
            self.observer.fleet_all_degraded(
                self.queue.now, len(candidates)
            )
        decision = self.router.select(tr, candidates, self)
        idx = decision.replica
        if idx not in candidates:
            raise ValueError(
                f"router {self.router.name!r} picked replica {idx} "
                f"outside the candidate set {candidates}"
            )
        self.router.on_routed(tr, decision, self)
        self.routed[idx] += 1
        fetch = self._account_session(tr, idx)
        rd = getattr(self.observer, "route_decision", None)
        if rd is not None:
            rd(
                self.queue.now,
                tr.request_id,
                idx,
                self.router.name,
                decision.reason,
                affinity_hit=decision.affinity_hit,
                kv_fetch_bytes=0.0 if fetch is None else fetch[2],
            )
        if fetch is None:
            self.replicas[idx].submit(tr)
        else:
            duration, handles, _ = fetch
            self.queue.schedule(
                duration,
                self._finish_fetch,
                tr,
                idx,
                handles,
                tag="kv_fetch",
            )
        return idx

    def _account_session(
        self, tr: TraceRequest, idx: int
    ) -> tuple[float, list[int], float] | None:
        """Update session residency; plan a KV fetch on a miss.

        Returns ``(duration, link handles, moved bytes)`` when resident
        KV must cross the fabric before the request can start, else
        None. Session-less requests are free: this is the no-op path
        every pre-existing trace takes.
        """
        sid = tr.session_id
        if sid is None:
            return None
        st = self.router_stats
        rec = self.sessions.get(sid)
        turn_kv = tr.input_len + tr.output_len
        if rec is None:
            self.sessions[sid] = [idx, turn_kv]
            st.new_sessions += 1
            return None
        holder, tokens = rec
        rec[0] = idx
        rec[1] = tokens + turn_kv
        if holder == idx:
            st.affinity_hits += 1
            st.kv_bytes_saved += kv_bytes_per_token(self.model) * tokens
            return None
        st.affinity_misses += 1
        duration, flows, moved = plan_kv_migration(
            self.ctx,
            self.model,
            tokens,
            self.replicas[holder].decode_stages,
            self.replicas[idx].decode_stages,
        )
        if duration <= 0.0 or moved <= 0.0:
            return None
        st.kv_fetches += 1
        st.kv_bytes_moved += moved
        st.kv_fetch_wait_s += duration
        ls = self.ctx.linkstate
        handles = [
            ls.register(list(links), nbytes / duration)
            for links, nbytes in flows
            if links
        ]
        return duration, handles, moved

    def _finish_fetch(
        self, tr: TraceRequest, idx: int, handles: list[int]
    ) -> None:
        """Resident KV has landed: release its flows, admit the turn."""
        ls = self.ctx.linkstate
        for h in handles:
            # strict=False: a mid-fetch fault-recovery reset would have
            # invalidated the handles; the leak stays counted.
            ls.release(h, strict=False)
        self.replicas[idx].submit(tr)

    # -- execution -------------------------------------------------------------

    def run(self, trace: Trace, drain_time: float = 300.0) -> FleetMetrics:
        """Replay a trace through the router; returns aggregated metrics."""
        for tr in trace:
            self.queue.schedule_at(
                tr.arrival_time, self.route, tr, tag="fleet_arrival"
            )
        self.queue.run(until=trace.duration + drain_time)
        return FleetMetrics(
            per_replica=[sim.metrics for sim in self.replicas],
            routed=list(self.routed),
            router_stats=self.router_stats,
        )
