"""Replica fleets: several deployments sharing one fabric.

The paper's large-scale setting serves many model instances on one
cluster; their traffic shares the Ethernet fabric, which is exactly the
multi-tenant congestion HeroServe's scheduling is built for. A
:class:`ReplicaFleet` runs several :class:`ServingSimulator` deployments
on **one** event queue and **one** link-load tracker, so replicas'
synchronisation, KV transfers and pipeline traffic contend; a
join-shortest-queue router dispatches arriving requests across the
active replicas.

The fleet is also the substrate for §VII's "rapid scaling in and out"
(see :mod:`repro.serving.autoscale`): replicas can be deactivated
(drained — no new requests routed, in-flight ones finish) and
reactivated at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serving.engine import ServingSimulator
from repro.serving.metrics import ServingMetrics
from repro.sim.eventqueue import EventQueue
from repro.workloads.traces import Trace, TraceRequest


@dataclass
class FleetMetrics:
    """Aggregated view over per-replica metrics."""

    per_replica: list[ServingMetrics]
    routed: list[int]

    def all_finished(self):
        return [r for m in self.per_replica for r in m.finished]

    @property
    def n_finished(self) -> int:
        return sum(m.n_finished for m in self.per_replica)

    def attainment(self) -> float:
        finished = self.all_finished()
        if not finished:
            return 0.0
        sla = self.per_replica[0].sla
        ok = sum(r.meets_sla(sla.ttft, sla.tpot) for r in finished)
        return ok / len(finished)

    def mean_ttft(self) -> float:
        finished = self.all_finished()
        if not finished:
            return float("nan")
        return sum(r.ttft for r in finished) / len(finished)

    def mean_tpot(self) -> float:
        finished = self.all_finished()
        if not finished:
            return float("nan")
        return sum(r.tpot for r in finished) / len(finished)


@dataclass
class ReplicaFleet:
    """Several deployments, one fabric, one clock, one router."""

    replicas: list[ServingSimulator]
    queue: EventQueue
    active: list[bool] = field(default_factory=list)
    routed: list[int] = field(default_factory=list)
    #: observability sink for router-level events; defaults to the first
    #: replica's observer (the fleet-shared one in every current caller)
    observer: object = None
    _all_degraded: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError("fleet needs at least one replica")
        for sim in self.replicas:
            if sim.queue is not self.queue:
                raise ValueError(
                    "all replicas must share the fleet's event queue"
                )
        if not self.active:
            self.active = [True] * len(self.replicas)
        if not self.routed:
            self.routed = [0] * len(self.replicas)
        if self.observer is None:
            self.observer = self.replicas[0].obs

    # -- scaling hooks -----------------------------------------------------

    @property
    def n_active(self) -> int:
        return sum(self.active)

    def set_active(self, idx: int, value: bool) -> None:
        """(De)activate a replica; deactivation drains, never kills."""
        if not 0 <= idx < len(self.replicas):
            raise IndexError(f"no replica {idx}")
        if not value and self.n_active == 1 and self.active[idx]:
            raise ValueError("cannot deactivate the last active replica")
        self.active[idx] = value

    # -- routing -------------------------------------------------------------

    def route(self, tr: TraceRequest) -> int:
        """Join-shortest-queue dispatch among active, healthy replicas.

        Replicas currently degraded by an injected fault (a failed
        prefill/decode server) are skipped while any healthy active
        replica exists; when every active replica is simultaneously
        degraded the router falls back to least-backlog routing over
        the degraded set (requests queue rather than drop) and emits an
        edge-triggered ``fleet_all_degraded`` flight-recorder event.
        """
        candidates = [
            i for i, a in enumerate(self.active) if a
        ]
        if not candidates:
            # Defensive: set_active refuses to drain the last replica,
            # but an externally mutated mask must still route somewhere.
            candidates = list(range(len(self.replicas)))
        healthy = [
            i for i in candidates if not self.replicas[i].degraded
        ]
        if healthy:
            candidates = healthy
            self._all_degraded = False
        elif not self._all_degraded:
            self._all_degraded = True
            self.observer.fleet_all_degraded(
                self.queue.now, len(candidates)
            )
        idx = min(
            candidates, key=lambda i: self.replicas[i].queued_requests
        )
        self.replicas[idx].submit(tr)
        self.routed[idx] += 1
        return idx

    # -- execution -------------------------------------------------------------

    def run(self, trace: Trace, drain_time: float = 300.0) -> FleetMetrics:
        """Replay a trace through the router; returns aggregated metrics."""
        for tr in trace:
            self.queue.schedule_at(
                tr.arrival_time, self.route, tr, tag="fleet_arrival"
            )
        self.queue.run(until=trace.duration + drain_time)
        return FleetMetrics(
            per_replica=[sim.metrics for sim in self.replicas],
            routed=list(self.routed),
        )
