"""Router protocol, QoE classes, and the policy registry.

Mirrors the :class:`~repro.comm.scheme.CollectiveScheme` registry: each
routing policy is one named class, registered once at import time, and
resolved by name wherever a fleet (or the CLI's ``--router`` flag) asks
for one. Unlike collectives — which are stateless singletons — routers
carry per-fleet state (round-robin cursors, tuned knobs), so the
registry holds *classes* and :func:`get_router` hands out a fresh
instance per call.

The contract (see docs/ROUTING.md for the full guide):

* The **fleet** owns candidate filtering (active mask, degraded-replica
  avoidance, the edge-triggered all-degraded fallback) and all KV
  residency/transfer *accounting*. Every policy therefore inherits
  fault awareness for free and cannot corrupt the books.
* The **router** only picks one replica index out of the candidate list
  and labels the decision with a reason. Policies read fleet state
  (queue depths, session residency, live link state) but never mutate
  it; mutable policy state lives on the router instance and is updated
  through :meth:`Router.on_routed`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.fleet import ReplicaFleet
    from repro.workloads.traces import TraceRequest

#: Name of the policy a fleet uses when none is requested. ``jsq`` is
#: the pre-router join-shortest-queue dispatch, kept byte-identical so
#: default runs reproduce the historical goldens.
DEFAULT_ROUTER = "jsq"


# ---------------------------------------------------------------------------
# QoE / priority classes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QosClass:
    """One QoE/priority class with its per-class SLO weighting.

    ``load_weight`` scales how strongly the class avoids backlogged
    replicas: latency-critical traffic pays queue depth at a premium,
    batch traffic barely prices it. ``slo_scale`` loosens (>1) or
    tightens (<1) the deployment SLO when judging this class's requests
    — the per-class SLO weighting used by
    :meth:`repro.serving.fleet.FleetMetrics.qos_attainment`.
    """

    name: str
    load_weight: float = 1.0
    slo_scale: float = 1.0
    description: str = ""


#: The built-in QoE classes. Keys are the ``TraceRequest.qos`` values.
QOS_CLASSES: dict[str, QosClass] = {
    c.name: c
    for c in (
        QosClass(
            "interactive",
            load_weight=2.0,
            slo_scale=0.5,
            description="latency-critical chat; halves the SLO bounds "
            "and pays queue depth at twice the standard rate",
        ),
        QosClass(
            "standard",
            load_weight=1.0,
            slo_scale=1.0,
            description="default traffic; deployment SLO as-is",
        ),
        QosClass(
            "batch",
            load_weight=0.25,
            slo_scale=4.0,
            description="throughput-oriented; tolerates 4x the SLO and "
            "happily queues behind interactive traffic",
        ),
    )
}


def get_qos(name: str | None) -> QosClass:
    """Resolve a QoE class by name (``None`` means ``standard``)."""
    key = name or "standard"
    try:
        return QOS_CLASSES[key]
    except KeyError:
        raise KeyError(
            f"unknown QoE class {key!r}; "
            f"known: {sorted(QOS_CLASSES)}"
        ) from None


# ---------------------------------------------------------------------------
# decisions and the Router protocol
# ---------------------------------------------------------------------------


@dataclass
class RoutingDecision:
    """One routing verdict: the replica plus why it was picked.

    ``affinity_hit`` is ``True`` when a session turn landed on the
    replica already holding its KV, ``False`` when it provably did not,
    and ``None`` for session-less requests (no residency to hit).
    """

    replica: int
    reason: str
    affinity_hit: bool | None = None


class Router(ABC):
    """One fleet-level request-placement policy."""

    #: canonical registry key (``--router`` value)
    name: ClassVar[str]
    #: one-line summary shown by ``python -m repro routers``
    description: ClassVar[str]

    @abstractmethod
    def select(
        self,
        tr: "TraceRequest",
        candidates: list[int],
        fleet: "ReplicaFleet",
    ) -> RoutingDecision:
        """Pick one replica index out of ``candidates`` (never empty).

        ``candidates`` is already filtered to active — and, when any
        exist, healthy — replicas; the returned index must be one of
        them. Must not mutate fleet or policy state (use
        :meth:`on_routed`).
        """

    def on_routed(
        self,
        tr: "TraceRequest",
        decision: RoutingDecision,
        fleet: "ReplicaFleet",
    ) -> None:
        """Post-dispatch state update hook (cursor advance etc.)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, type[Router]] = {}


def register_router(cls: type[Router]) -> type[Router]:
    """Register a policy class under its canonical name; returns it.

    Usable as a class decorator, matching how collectives register in
    :mod:`repro.comm.scheme`.
    """
    key = cls.name
    if key in _REGISTRY:
        raise ValueError(f"router {key!r} is already registered")
    _REGISTRY[key] = cls
    return cls


def get_router(key: "str | Router | None") -> Router:
    """Resolve a policy by name (fresh instance) or pass one through.

    ``None`` resolves to :data:`DEFAULT_ROUTER`. Instances are returned
    as-is so callers can hand a pre-tuned router to several fleets
    deliberately; names always construct a new instance, keeping
    cursor/statistics state per fleet.
    """
    if key is None:
        key = DEFAULT_ROUTER
    if isinstance(key, Router):
        return key
    name = str(key)
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown router {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def registered_routers() -> tuple[type[Router], ...]:
    """Every registered policy class, in registration order."""
    return tuple(_REGISTRY.values())
