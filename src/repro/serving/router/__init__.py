"""Fleet request routing: policy protocol, registry, built-in policies.

See docs/ROUTING.md for the guide (decision rules, cost models, and
how to add a policy in one file).
"""

from repro.serving.router.base import (
    DEFAULT_ROUTER,
    QOS_CLASSES,
    QosClass,
    Router,
    RoutingDecision,
    get_qos,
    get_router,
    register_router,
    registered_routers,
)
from repro.serving.router.policies import (
    JsqRouter,
    KvAffinityRouter,
    LeastLoadedRouter,
    NetworkAwareRouter,
    RoundRobinRouter,
)

__all__ = [
    "DEFAULT_ROUTER",
    "QOS_CLASSES",
    "QosClass",
    "Router",
    "RoutingDecision",
    "get_qos",
    "get_router",
    "register_router",
    "registered_routers",
    "JsqRouter",
    "KvAffinityRouter",
    "LeastLoadedRouter",
    "NetworkAwareRouter",
    "RoundRobinRouter",
]
