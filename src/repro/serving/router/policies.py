"""The built-in routing policies.

Decision rules and cost models are documented in docs/ROUTING.md; the
summary:

* ``jsq`` — join-shortest-queue, the historical default (byte-identical
  to the pre-router fleet).
* ``round-robin`` — cyclic dispatch, the affinity-blind baseline.
* ``least-loaded`` — queue depth normalised by replica decode width
  (weighted JSQ for heterogeneous fleets).
* ``kv-affinity`` — route a session turn to the replica holding its KV
  unless that replica is backlogged (QoE-weighted gap) or its internal
  KV path is congested; fall back to network-priced selection.
* ``network-aware`` — full cost model for every request: cross-replica
  KV-fetch time + the replica's own live-priced prefill→decode KV path
  + QoE-weighted queue penalty.

All policies see only candidates the fleet already filtered for
activity and health, so degraded-replica avoidance is uniform.
"""

from __future__ import annotations

from repro.serving.router.base import (
    Router,
    RoutingDecision,
    get_qos,
    register_router,
)


@register_router
class JsqRouter(Router):
    """Join-shortest-queue over the candidate set (ties: lowest index).

    This is exactly the dispatch rule the fleet used before the router
    layer existed; it is the default so that runs without ``--router``
    stay byte-identical to the historical goldens.
    """

    name = "jsq"
    description = "join-shortest-queue (default; pre-router behaviour)"

    def select(self, tr, candidates, fleet) -> RoutingDecision:
        idx = min(
            candidates, key=lambda i: fleet.replicas[i].queued_requests
        )
        return RoutingDecision(idx, "jsq")


@register_router
class RoundRobinRouter(Router):
    """Strict cyclic dispatch, blind to load, sessions, and the fabric.

    The baseline every KV-aware policy is benchmarked against: it
    scatters a session's turns across replicas, forcing a resident-KV
    fetch on almost every follow-up turn.
    """

    name = "round-robin"
    description = "cyclic dispatch; affinity-blind baseline"

    def __init__(self) -> None:
        self._turn = 0

    def select(self, tr, candidates, fleet) -> RoutingDecision:
        idx = candidates[self._turn % len(candidates)]
        return RoutingDecision(idx, "round-robin")

    def on_routed(self, tr, decision, fleet) -> None:
        self._turn += 1


@register_router
class LeastLoadedRouter(Router):
    """Weighted least-loaded: queue depth per unit of decode capacity.

    Replicas are weighted by their decode-cluster width (GPU count), so
    a wide replica absorbs proportionally more of the open queue — the
    natural generalisation of JSQ to heterogeneous fleets. On equal
    widths it matches ``jsq``.
    """

    name = "least-loaded"
    description = "queue depth / decode width (weighted JSQ)"

    def select(self, tr, candidates, fleet) -> RoutingDecision:
        def score(i: int) -> float:
            sim = fleet.replicas[i]
            width = max(1, sum(len(s) for s in sim.decode_stages))
            return sim.queued_requests / width

        idx = min(candidates, key=lambda i: (score(i), i))
        return RoutingDecision(idx, "least-loaded")


@register_router
class KvAffinityRouter(Router):
    """Prefix/KV-cache-affinity routing with network-priced fallback.

    Decision rule for a session turn whose KV resides on replica ``h``:

    1. **Affinity hit** — if ``h`` is a (healthy, active) candidate,
       its backlog gap over the emptiest candidate is within the
       QoE-weighted tolerance ``max_backlog_gap / load_weight``, and
       its internal prefill→decode KV path has at least
       ``min_headroom`` of its bottleneck bandwidth free: route to
       ``h``. No KV moves.
    2. **Fallback** — otherwise score every candidate with
       ``fetch_time(h→i) + queue_penalty_s · load_weight · queued(i)``
       where ``fetch_time`` prices moving the session's resident KV
       from ``h``'s decode placement to ``i``'s through the *live*
       link state (Eq. 14/15 machinery), and pick the cheapest. A
       congested-but-otherwise-affine holder is excluded from the
       scored set when alternatives exist.

    New sessions and session-less requests fall through to JSQ — the
    first turn has no residency to respect.
    """

    name = "kv-affinity"
    description = (
        "route sessions to their KV-resident replica; network-priced "
        "fallback on backlog/congestion/degradation"
    )

    def __init__(
        self,
        max_backlog_gap: int = 8,
        min_headroom: float = 0.25,
        queue_penalty_s: float = 0.05,
    ) -> None:
        if max_backlog_gap < 0:
            raise ValueError("max_backlog_gap must be >= 0")
        if not 0.0 <= min_headroom <= 1.0:
            raise ValueError("min_headroom must be in [0, 1]")
        if queue_penalty_s < 0:
            raise ValueError("queue_penalty_s must be >= 0")
        self.max_backlog_gap = max_backlog_gap
        self.min_headroom = min_headroom
        self.queue_penalty_s = queue_penalty_s

    def _jsq(self, candidates, fleet) -> int:
        return min(
            candidates, key=lambda i: fleet.replicas[i].queued_requests
        )

    def select(self, tr, candidates, fleet) -> RoutingDecision:
        holder = fleet.session_holder(tr.session_id)
        if holder is None:
            reason = (
                "new-session" if tr.session_id is not None else "no-session"
            )
            return RoutingDecision(self._jsq(candidates, fleet), reason)
        qos = get_qos(tr.qos)
        h, tokens = holder
        scored = list(candidates)
        if h in candidates:
            min_q = min(
                fleet.replicas[i].queued_requests for i in candidates
            )
            gap = fleet.replicas[h].queued_requests - min_q
            if gap > self.max_backlog_gap / qos.load_weight:
                reason = "backlog-fallback"
            elif fleet.kv_path_headroom(h) < self.min_headroom:
                reason = "congested-fallback"
                if len(scored) > 1:
                    scored = [i for i in scored if i != h]
            else:
                return RoutingDecision(h, "affinity-hit", affinity_hit=True)
        else:
            reason = "degraded-fallback"

        def cost(i: int) -> float:
            fetch = fleet.estimate_fetch_time(h, tokens, i)
            queue = (
                self.queue_penalty_s
                * qos.load_weight
                * fleet.replicas[i].queued_requests
            )
            return fetch + queue

        idx = min(scored, key=lambda i: (cost(i), i))
        return RoutingDecision(idx, reason, affinity_hit=(idx == h))


@register_router
class NetworkAwareRouter(Router):
    """Always-on network pricing: every request pays its data movement.

    Scores every candidate with

    ``fetch_time(h→i) + internal_kv_time(i) +
    queue_penalty_s · load_weight · queued(i)``

    where ``fetch_time`` is the session's resident-KV migration cost
    (zero for new sessions or the holder itself) and
    ``internal_kv_time`` prices the request's *own* prefill→decode KV
    handoff inside replica ``i`` through the live link state — so even
    session-less traffic steers away from replicas whose KV path the
    fabric is currently squeezing. Affinity emerges from the cost model
    (the holder's fetch term is zero) rather than a fast path.
    """

    name = "network-aware"
    description = (
        "price KV fetch + replica-internal KV path through live link "
        "state for every request"
    )

    def __init__(self, queue_penalty_s: float = 0.05) -> None:
        if queue_penalty_s < 0:
            raise ValueError("queue_penalty_s must be >= 0")
        self.queue_penalty_s = queue_penalty_s

    def select(self, tr, candidates, fleet) -> RoutingDecision:
        holder = fleet.session_holder(tr.session_id)
        qos = get_qos(tr.qos)

        def cost(i: int) -> float:
            fetch = 0.0
            if holder is not None:
                fetch = fleet.estimate_fetch_time(holder[0], holder[1], i)
            internal = fleet.internal_kv_time(i, tr.input_len)
            queue = (
                self.queue_penalty_s
                * qos.load_weight
                * fleet.replicas[i].queued_requests
            )
            return fetch + internal + queue

        idx = min(candidates, key=lambda i: (cost(i), i))
        hit = None if holder is None else (idx == holder[0])
        return RoutingDecision(idx, "network-aware", affinity_hit=hit)
