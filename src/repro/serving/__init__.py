"""Serving simulator: DES engine, metrics, capacity search, fleets."""

from repro.serving.autoscale import (
    AutoScaler,
    ScalingAction,
    estimate_replica_capacity,
)
from repro.serving.background import (
    BackgroundTraffic,
    BackgroundTrafficConfig,
)
from repro.serving.fleet import FleetMetrics, ReplicaFleet
from repro.serving.capacity import (
    MIN_COMPLETION_FRACTION,
    RatePoint,
    evaluate_rate,
    find_max_rate,
    rate_sweep,
)
from repro.serving.engine import EngineConfig, ServingSimulator
from repro.serving.metrics import (
    SLA_ATTAINMENT_TARGET,
    MemorySample,
    RouterStats,
    ServingMetrics,
)
from repro.serving.request import RequestPhase, RequestState
from repro.serving.router import (
    DEFAULT_ROUTER,
    QOS_CLASSES,
    QosClass,
    Router,
    RoutingDecision,
    get_qos,
    get_router,
    register_router,
    registered_routers,
)

__all__ = [
    "AutoScaler",
    "ScalingAction",
    "estimate_replica_capacity",
    "FleetMetrics",
    "ReplicaFleet",
    "BackgroundTraffic",
    "BackgroundTrafficConfig",
    "MIN_COMPLETION_FRACTION",
    "RatePoint",
    "evaluate_rate",
    "find_max_rate",
    "rate_sweep",
    "EngineConfig",
    "ServingSimulator",
    "SLA_ATTAINMENT_TARGET",
    "MemorySample",
    "RouterStats",
    "ServingMetrics",
    "RequestPhase",
    "RequestState",
    "DEFAULT_ROUTER",
    "QOS_CLASSES",
    "QosClass",
    "Router",
    "RoutingDecision",
    "get_qos",
    "get_router",
    "register_router",
    "registered_routers",
]
