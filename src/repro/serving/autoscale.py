"""Rapid scaling in/out of replicas (the paper's §VII future work).

"We plan to design a mechanism that enables rapid scaling in and out to
achieve finer-grained scheduling of computational resources."

The :class:`AutoScaler` watches the fleet's recent arrival rate and the
per-replica sustainable rate (estimated from the offline plan's service
time and decode concurrency), and activates/deactivates replicas with
hysteresis: scale **out** when the observed load exceeds the active
capacity's high-water fraction, scale **in** (drain one replica) when it
falls below the low-water fraction. Deactivated replicas finish their
in-flight requests — scaling never drops work. The fleet's routing
layer honours the active mask automatically: a drained replica is
never offered to any policy (see :mod:`repro.serving.router`), though
session KV left behind stays resident and is fetched across the fabric
if the session's next turn must land elsewhere.

The scaler can additionally subscribe to the SLO monitor's
:class:`~repro.obs.slo.AlertSink`: a firing *page* burn-rate alert
forces a scale-out at the next tick even when the rate-based policy
would hold — latency pain preempts throughput arithmetic — and blocks
scale-in while any page alert is unresolved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serving.fleet import ReplicaFleet
from repro.sim.eventqueue import EventQueue
from repro.util.validation import require_positive


@dataclass(frozen=True)
class ScalingAction:
    """One autoscaler decision, recorded for inspection."""

    time: float
    kind: str            # "out" | "in" | "hold"
    active_after: int
    observed_rate: float
    capacity: float
    #: what drove the decision ("" for plain rate hysteresis)
    reason: str = ""


@dataclass
class AutoScaler:
    """Hysteresis-based replica scaler driven by observed arrival rate."""

    fleet: ReplicaFleet
    queue: EventQueue
    #: sustainable request rate of one replica (requests/s)
    replica_capacity: float
    window: float = 10.0
    high_water: float = 0.85
    low_water: float = 0.35
    actions: list[ScalingAction] = field(default_factory=list)
    #: every alert delivered through :meth:`on_alert`, in order
    alerts_received: list = field(default_factory=list)
    _last_routed: int = 0
    _page_pending: bool = field(default=False, repr=False)
    _pages_active: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        require_positive("replica_capacity", self.replica_capacity)
        require_positive("window", self.window)
        if not 0.0 < self.low_water < self.high_water <= 1.0:
            raise ValueError(
                "need 0 < low_water < high_water <= 1, got "
                f"{self.low_water}/{self.high_water}"
            )

    def start(self, horizon: float) -> None:
        """Schedule the periodic scaling loop on [now, now+horizon)."""
        end = self.queue.now + horizon
        self.queue.schedule(self.window, self._tick, end, tag="autoscale")

    # -- SLO alert subscription --------------------------------------------

    def subscribe(self, sink) -> None:
        """Attach to an :class:`~repro.obs.slo.AlertSink`."""
        sink.subscribe(self.on_alert)

    def on_alert(self, alert) -> None:
        """Receive one burn-rate alert from the SLO monitor.

        A firing page alert arms a forced scale-out for the next tick;
        the pending flag stays armed until a tick consumes it, so a page
        that fires and resolves between ticks still gets its capacity
        response.
        """
        self.alerts_received.append(alert)
        if alert.severity != "page":
            return
        if alert.firing:
            self._page_pending = True
            self._pages_active += 1
        else:
            self._pages_active = max(0, self._pages_active - 1)

    # -- internals ---------------------------------------------------------

    def observed_rate(self) -> float:
        """Arrival rate over the last window (router counter delta)."""
        routed = sum(self.fleet.routed)
        rate = (routed - self._last_routed) / self.window
        self._last_routed = routed
        return rate

    def _tick(self, end: float) -> None:
        rate = self.observed_rate()
        capacity = self.fleet.n_active * self.replica_capacity
        kind = "hold"
        reason = ""
        page_forced = self._page_pending or self._pages_active > 0
        self._page_pending = False
        if (
            page_forced or rate > self.high_water * capacity
        ) and self.fleet.n_active < len(self.fleet.replicas):
            # Scale out: activate the first inactive replica.
            idx = self.fleet.active.index(False)
            self.fleet.set_active(idx, True)
            kind = "out"
            if page_forced:
                reason = "slo_page_burn"
        elif (
            rate < self.low_water * capacity
            and self.fleet.n_active > 1
            and not page_forced
        ):
            # Scale in: drain the active replica with the least backlog.
            candidates = [
                i for i, a in enumerate(self.fleet.active) if a
            ]
            idx = min(
                candidates,
                key=lambda i: self.fleet.replicas[i].queued_requests,
            )
            healthy_rest = [
                i
                for i in candidates
                if i != idx and not self.fleet.replicas[i].degraded
            ]
            if (
                self.fleet.replicas[idx].queued_requests > 0
                and not healthy_rest
            ):
                # Drain guard: the victim still has queued work and no
                # healthy peer could take its traffic — draining now
                # would strand the backlog behind degraded replicas.
                reason = "drain_guard"
            else:
                self.fleet.set_active(idx, False)
                kind = "in"
        self.actions.append(
            ScalingAction(
                time=self.queue.now,
                kind=kind,
                active_after=self.fleet.n_active,
                observed_rate=rate,
                capacity=capacity,
                reason=reason,
            )
        )
        if self.queue.now + self.window <= end:
            self.queue.schedule(
                self.window, self._tick, end, tag="autoscale"
            )

    # -- reporting ------------------------------------------------------------

    def scale_events(self) -> list[ScalingAction]:
        """Only the decisions that changed the fleet size."""
        return [a for a in self.actions if a.kind != "hold"]


def estimate_replica_capacity(
    plan, forecast_batch, utilization: float = 0.5
) -> float:
    """Sustainable requests/s of one deployment from its offline plan.

    The deployment completes about ``concurrency / T_serve`` requests
    per second at full batch width, with T_serve from the plan's
    *idle-network, small-batch* latency predictions (Eq. 2); under load,
    decode iterations slow with batch size and context length, so the
    raw figure is derated by ``utilization`` (SLA-safe operating point).
    """
    if not 0.0 < utilization <= 1.0:
        raise ValueError(f"utilization in (0,1], got {utilization}")
    mean_out = forecast_batch.k_out / forecast_batch.q
    t_serve = (
        plan.t_prefill
        + mean_out * plan.t_decode
        + plan.t_kv_transfer
    )
    concurrency = 64  # engine default decode width
    return utilization * concurrency / max(t_serve, 1e-9)
