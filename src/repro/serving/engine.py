"""Discrete-event serving simulator: disaggregated prefill/decode on a
heterogeneous network.

Mesoscopic granularity (the HPC-guide trade-off): events are *prefill
batches*, *decode iterations* and *KV transfers*, never packets. Each
event's duration comes from the fitted compute model (Eqs. 12-13) plus
the communication estimators (Eqs. 5-11) priced against the **live** link
state, so congestion feeds back into iteration times; conversely every
network activity registers its sustained load on the links it occupies,
so concurrent activities (prefill sync, decode sync, KV transfers,
injected background bursts) contend for the same bandwidth.

Continuous batching follows Orca: prefill batches are formed from the
queue up to a token budget; the decode batch is re-formed at every
iteration boundary, admitting waiting requests whenever KV memory allows.

Communication scheduling per system:

* baselines (ring / INA flavours) — re-run the Eq. 7 static selection
  each pass against current link state (NCCL/SwitchML behaviour);
* HeroServe — route every synchronisation step through the
  :class:`~repro.core.controller.CentralController`'s load-aware policy
  tables, and `tick` the controller on its monitoring cadence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.comm.context import CommContext
from repro.comm.latency import (
    DEFAULT_N_SLOTS,
    SchemeKind,
    allreduce_bytes,
    price_group_step,
    sync_steps_per_pass,
)
from repro.comm.pipeline import (
    decode_activation_bytes,
    pipeline_sync_time,
    prefill_activation_bytes,
)
from repro.core.controller import CentralController
from repro.core.kvtransfer import estimate_kv_transfer_time, kv_transfer_flows
from repro.core.objective import SlaSpec
from repro.core.plan import Plan
from repro.llm.batch import BatchSpec
from repro.llm.costmodel import CostModelBank
from repro.llm.memory import MemoryBudget
from repro.llm.models import ModelConfig
from repro.obs.logging_config import get_logger
from repro.obs.observer import NULL_OBSERVER
from repro.serving.metrics import ServingMetrics
from repro.serving.request import RequestPhase, RequestState
from repro.network.topology import LinkKind
from repro.workloads.traces import Trace
from repro.sim.eventqueue import EventQueue

log = get_logger(__name__)

#: Without a controller there is no monitoring cadence; sample link
#: gauges every Nth EWMA poll instead so baselines stay observable
#: without a per-iteration Python sweep over the fabric.
_BASELINE_LINK_SAMPLE_EVERY = 16

#: Slowdown of an INA step whose aggregation switch is ground-truth dead:
#: packets blackhole, senders burn retransmission timeouts. Systems with
#: no ring fallback (DS-SwitchML/DS-ATP) pay this for the whole outage;
#: the hybrid scheduler pays it only until detection fails the group over.
INA_TIMEOUT_FACTOR = 20.0


@dataclass
class EngineConfig:
    """Continuous-batching and simulation knobs."""

    max_prefill_requests: int = 16
    max_prefill_tokens: int = 16384
    max_decode_batch: int = 64
    #: decode comm estimates are recomputed every N iterations (they only
    #: drift with link load, which changes slowly relative to iterations)
    comm_refresh_every: int = 8
    #: controller monitoring cadence (seconds)
    controller_period: float = 0.05
    #: simulation horizon beyond the last arrival (seconds)
    drain_time: float = 300.0
    r_frac: float = 0.65
    #: observability sink; the shared no-op default records nothing and
    #: leaves results byte-identical to an unobserved run
    observer: object = NULL_OBSERVER
    #: extra registered collectives (e.g. ("ring-2stage", "tree")) whose
    #: policies the online scheduler considers alongside the plan's scheme
    extra_schemes: tuple[str, ...] = ()

    # -- counterfactual perturbations (repro.obs.whatif) ---------------
    # Every default below is an exact no-op: a default-valued config
    # leaves the simulation byte-identical to one without these fields.
    #: ``((link_class, factor), ...)`` capacity scales applied to the
    #: run's LinkLoadTracker at simulator construction; selectors are
    #: Topology.link_classes() names (or raw kinds), factor > 1 = upgrade
    link_scale: tuple[tuple[str, float], ...] = ()
    #: speedups (>1 = faster) dividing the fitted compute/transfer times
    prefill_compute_scale: float = 1.0
    decode_compute_scale: float = 1.0
    kv_time_scale: float = 1.0
    #: override the INA switch SRAM slot budget used when *statically*
    #: pricing plan-time policies (None keeps the scheme default)
    n_slots: int | None = None


class ServingSimulator:
    """One serving deployment executing a trace."""

    def __init__(
        self,
        ctx: CommContext,
        plan: Plan,
        model: ModelConfig,
        bank: CostModelBank,
        sla: SlaSpec,
        trace: Trace | None = None,
        controller: CentralController | None = None,
        config: EngineConfig | None = None,
        queue: EventQueue | None = None,
        faults=None,
        replanner=None,
    ) -> None:
        if ctx.linkstate is None:
            raise ValueError(
                "ServingSimulator needs a CommContext with a LinkLoadTracker"
            )
        self.ctx = ctx
        self.plan = plan
        self.model = model
        self.bank = bank
        self.sla = sla
        self.trace = trace
        self.controller = controller
        self.cfg = config or EngineConfig()
        self.obs = self.cfg.observer or NULL_OBSERVER
        # Counterfactual link upgrades (what-if resimulation). scale_links
        # *sets* absolute factors, so replicas sharing one tracker cannot
        # compound the scale.
        for selector, factor in self.cfg.link_scale:
            ctx.linkstate.scale_class(selector, factor)
        self._n_slots = (
            DEFAULT_N_SLOTS if self.cfg.n_slots is None else self.cfg.n_slots
        )
        #: simulator self-profiler (host wall-clock); carried by the
        #: observer but read independently of ``obs.enabled`` so the
        #: benchmark can time the hot path without span overhead
        self._sp = getattr(self.obs, "selfprof", None)
        self._poll_counter = 0

        # A fleet shares one queue (and one link tracker) across
        # replicas so their traffic contends; standalone use gets its own.
        self.queue = queue if queue is not None else EventQueue()
        self.metrics = ServingMetrics(sla=sla)

        # -- cluster state
        self.prefill_stages = [list(s) for s in plan.prefill.stages]
        self.decode_stages = [list(s) for s in plan.decode.stages]
        self._prefill_hw = ctx.group_hardware(
            [g for s in self.prefill_stages for g in s]
        )
        self._decode_hw = ctx.group_hardware(
            [g for s in self.decode_stages for g in s]
        )
        topo = ctx.built.topology
        dec_min_mem = min(
            topo.nodes[g].memory_bytes
            for s in self.decode_stages
            for g in s
        )
        self.kv_budget = MemoryBudget(
            model,
            plan.parallel.p_tens_decode,
            plan.parallel.p_pipe_decode,
            dec_min_mem,
            r_frac=self.cfg.r_frac,
        )
        self.kv_capacity = self.kv_budget.max_cached_tokens()
        self.kv_used = 0

        # -- queues / flags
        self.prefill_queue: list[RequestState] = []
        self.prefill_busy = False
        self.decode_pending: list[RequestState] = []
        self.decode_active: list[RequestState] = []
        self.decode_busy = False
        self._decode_comm_cache: tuple[int, float] | None = None
        self._decode_footprints: list[tuple[tuple[int, ...], float]] = []
        self._decode_decisions: list[dict] = []
        self._decode_iter_counter = 0
        self._eth_links = np.where(
            ctx.built.topology.kind_array() == int(LinkKind.ETHERNET)
        )[0]

        # -- fault tolerance (None keeps the fault-free fast path)
        self.faults = faults
        self._prefill_down = False
        self._decode_down = False
        self._prefill_gpu_set = {g for s in self.prefill_stages for g in s}
        self._decode_gpu_set = {g for s in self.decode_stages for g in s}
        #: in-flight work tracked for cancellation on server failure
        self._prefill_inflight: tuple | None = None
        self._decode_inflight: tuple | None = None
        self._kv_inflight: list[dict] = []
        if faults is not None:
            faults.attach_engine(self)

        # -- online replanning (None keeps the replan-free fast path)
        self.replanner = replanner
        #: True while a plan transition quiesces/migrates: no new
        #: prefill batch or decode iteration may start (in-flight ones
        #: finish; nothing is dropped)
        self.replan_hold = False
        if replanner is not None:
            replanner.attach(self)

    # ------------------------------------------------------------------
    # communication pricing
    # ------------------------------------------------------------------

    def _contention(self) -> float:
        """Smoothed Ethernet utilisation feeding ATP's fallback model.

        Uses the EWMA view (the polled hardware counters), not the
        instantaneous load, so a single in-flight transfer does not read
        as full contention.
        """
        util = self.ctx.linkstate.ewma_utilization()[self._eth_links]
        if util.size == 0:
            return 0.0
        return float(np.clip(util.mean(), 0.0, 1.0))

    def _phase_comm_time(
        self,
        stages: list[list[int]],
        tokens: int,
        activation_bytes: int,
        plan_comm: tuple,
    ) -> tuple[float, list[tuple[tuple[int, ...], float]], list[dict]]:
        """(total sync time, [(links, bytes)], decisions) for one pass.

        With a controller (HeroServe) every group's step is routed
        through the load-aware policy tables. Without one, the group
        executes its *plan-time* policy (mode + switch fixed at
        deployment, as real static systems do), priced at the live link
        bandwidths.

        ``decisions`` carries per-group (policy, mode, step time, steps,
        bytes) records for the observability layer — including the most
        utilised link of the policy's footprint at decision time, the
        congestion it priced against — and is built only when an
        observer is attached.
        """
        data = allreduce_bytes(self.model, tokens)
        steps = sync_steps_per_pass(self.model, len(stages))
        total = 0.0
        footprints: list[tuple[tuple[int, ...], float]] = []
        decisions: list[dict] = []
        observing = self.obs.enabled
        if observing:
            # Decision-time congestion view: loads registered by earlier
            # passes, before this pass adds its own.
            ls_util = self.ctx.linkstate.utilization()
            ls_kinds = self.ctx.linkstate.kind_names()
        contention = self._contention()
        for grp, planned in zip(stages, plan_comm):
            if self.controller is not None and len(grp) > 1:
                dec = self.controller.decide(grp, data)
                step_t, links = dec.step_time, dec.links
                policy_name, mode = dec.policy.name, dec.policy.mode
                switch = dec.policy.switch
                if (
                    self.faults is not None
                    and dec.policy.switch is not None
                    and self.faults.switch_faulted(dec.policy.switch)
                ):
                    # Selected before detection caught up: the group
                    # stalls on retransmissions until the controller
                    # masks the dead switch at the next health poll.
                    step_t *= INA_TIMEOUT_FACTOR
            else:
                step_t = price_group_step(
                    self.ctx,
                    grp,
                    self.plan.scheme,
                    planned.mode,
                    planned.ina_switch,
                    data,
                    n_slots=self._n_slots,
                    contention=contention,
                )
                if (
                    self.faults is not None
                    and planned.ina_switch is not None
                    and self.faults.switch_faulted(planned.ina_switch)
                ):
                    # Static systems have no ring fallback: every step
                    # through the dead switch pays the timeout stall.
                    step_t *= INA_TIMEOUT_FACTOR
                links = planned.links
                mode = planned.mode
                switch = planned.ina_switch
                policy_name = (
                    f"{mode}@{planned.ina_switch}"
                    if planned.ina_switch is not None
                    else mode
                )
                if observing:
                    # Controller-routed groups are counted inside the
                    # scheduler; static plan-time policies are counted
                    # here so the selection metric covers baselines too.
                    self.obs.policy_selected(tuple(grp), policy_name, mode)
            total += steps * step_t
            if links:
                footprints.append((tuple(links), float(data * steps)))
            if observing:
                b_link = None
                b_kind = ""
                b_util = 0.0
                if links:
                    ids = np.asarray(links, dtype=np.int64)
                    u = ls_util[ids]
                    j = int(u.argmax())
                    b_link = int(ids[j])
                    b_util = float(u[j])
                    b_kind = ls_kinds[b_link]
                decisions.append(
                    {
                        "group": tuple(grp),
                        "policy": policy_name,
                        "mode": mode,
                        "step_time": step_t,
                        "steps": steps,
                        "data_bytes": float(data),
                        "switch": switch,
                        "bottleneck_link": b_link,
                        "bottleneck_kind": b_kind,
                        "bottleneck_util": b_util,
                    }
                )
        if len(stages) > 1:
            total += pipeline_sync_time(self.ctx, stages, activation_bytes)
        return total, footprints, decisions

    def _emit_allreduce_spans(
        self,
        phase: str,
        comm_start: float,
        decisions: list[dict],
        request_ids: tuple[int, ...] = (),
    ) -> None:
        """Lay each group's sync slice inside the owning pass span.

        Groups synchronise back-to-back in the pass pricing (the total is
        the sum over groups), so their spans stack sequentially from the
        end of the compute slice — nested, by construction, within the
        prefill/decode span that owns them.
        """
        t = comm_start
        for d in decisions:
            dur = d["steps"] * d["step_time"]
            self.obs.allreduce_span(
                phase,
                t,
                dur,
                d["group"],
                d["policy"],
                d["mode"],
                d["steps"],
                d["data_bytes"],
                request_ids=request_ids,
                bottleneck_link=d["bottleneck_link"],
                bottleneck_kind=d["bottleneck_kind"],
                bottleneck_util=d["bottleneck_util"],
                switch=d["switch"],
            )
            t += dur

    def _register_pass_load(
        self,
        footprints: list[tuple[tuple[int, ...], float]],
        duration: float,
    ) -> list[int]:
        """Register each footprint's mean rate for the pass duration."""
        sp = self._sp
        t0 = time.perf_counter() if sp is not None else 0.0
        handles = []
        ls = self.ctx.linkstate
        for links, total_bytes in footprints:
            rate = total_bytes / max(duration, 1e-9)
            handles.append(ls.register(list(links), rate))
        if sp is not None:
            sp.add("engine.link_load", time.perf_counter() - t0)
        return handles

    def _release(self, handles: list[int]) -> None:
        # Tolerant release: failover cancellation may race an already
        # completed pass, and a double release must not kill the run.
        sp = self._sp
        t0 = time.perf_counter() if sp is not None else 0.0
        for h in handles:
            self.ctx.linkstate.release(h, strict=False)
        if sp is not None:
            sp.add("engine.link_load", time.perf_counter() - t0)

    # ------------------------------------------------------------------
    # prefill
    # ------------------------------------------------------------------

    def _on_arrival(self, req: RequestState) -> None:
        if self.obs.enabled:
            self.obs.request_arrival(self.queue.now, req)
        if self.replanner is not None:
            self.replanner.on_arrival(self.queue.now, req)
        self.prefill_queue.append(req)
        self._try_start_prefill()

    def _form_prefill_batch(self) -> list[RequestState]:
        batch: list[RequestState] = []
        tokens = 0
        while self.prefill_queue:
            nxt = self.prefill_queue[0]
            if batch and (
                len(batch) >= self.cfg.max_prefill_requests
                or tokens + nxt.input_len > self.cfg.max_prefill_tokens
            ):
                break
            batch.append(self.prefill_queue.pop(0))
            tokens += nxt.input_len
        return batch

    def _try_start_prefill(self) -> None:
        if (
            self.prefill_busy
            or self._prefill_down
            or self.replan_hold
            or not self.prefill_queue
        ):
            return
        sp = self._sp
        if sp is None:
            batch = self._form_prefill_batch()
        else:
            t0 = time.perf_counter()
            batch = self._form_prefill_batch()
            sp.add("engine.batch_formation", time.perf_counter() - t0)
        self.prefill_busy = True
        spec = BatchSpec(
            tuple(r.input_len for r in batch),
            tuple(r.output_len for r in batch),
        )
        for r in batch:
            r.phase = RequestPhase.PREFILLING
            r.prefill_start = self.queue.now
        t_c = self.bank.group_prefill_time(
            self._prefill_hw, spec, self.plan.parallel.p_tens_prefill
        )
        if self.cfg.prefill_compute_scale != 1.0:
            t_c /= self.cfg.prefill_compute_scale
        t_n, footprints, decisions = self._phase_comm_time(
            self.prefill_stages,
            spec.k_in,
            prefill_activation_bytes(self.model, spec.k_in),
            self.plan.prefill.comm,
        )
        duration = t_c + t_n
        handles = self._register_pass_load(footprints, duration)
        self.metrics.prefill_batches += 1
        if self.obs.enabled:
            now = self.queue.now
            rids = tuple(r.request_id for r in batch)
            self.obs.prefill_span(
                now, duration, len(batch), spec.k_in, t_c, t_n,
                request_ids=rids,
            )
            self._emit_allreduce_spans(
                "prefill", now + t_c, decisions, rids
            )
        ev = self.queue.schedule(
            duration, self._prefill_done, batch, spec, handles,
            tag="prefill_done",
        )
        self._prefill_inflight = (ev, batch, handles)

    def _prefill_done(
        self,
        batch: list[RequestState],
        spec: BatchSpec,
        handles: list[int],
    ) -> None:
        self._prefill_inflight = None
        self._release(handles)
        now = self.queue.now
        for r in batch:
            r.first_token_time = now
            r.phase = RequestPhase.KV_TRANSFER
        self.prefill_busy = False
        self._tick_controller()
        self._try_start_prefill()
        # KV transfer of the whole batch to the decode cluster.
        self._start_kv_transfer(batch, spec, attempt=0)

    def _start_kv_transfer(
        self,
        batch: list[RequestState],
        spec: BatchSpec,
        attempt: int,
        waited: float = 0.0,
    ) -> None:
        """Hand the batch's KV to the decode cluster, tolerating faults.

        While the decode cluster is ground-truth unreachable (failed
        server) the transfer backs off exponentially with jitter and
        retries — the prefill side still holds the KV until the handoff
        completes — within the retry policy's *budget* (max attempts
        and total-backoff ceiling); a batch that exhausts the budget is
        failed outright rather than retried forever against a dead
        pairing. During a recovery hold-down, transfers re-pair around
        the decode GPUs the control plane still believes dead.
        """
        now = self.queue.now
        if self.faults is not None and self.faults.gpus_blocked(
            self._decode_gpu_set
        ):
            policy = self.faults.retry
            if (
                attempt >= policy.max_attempts
                or waited >= policy.total_backoff_cap_s
            ):
                self._fail_kv_transfer(batch, attempt)
                return
            delay = self.faults.backoff(attempt)
            self.faults.counters.kv_retries += 1
            if self.obs.enabled:
                self.obs.kv_retry(
                    now,
                    attempt,
                    delay,
                    request_ids=tuple(r.request_id for r in batch),
                )
            self.queue.schedule(
                delay,
                self._start_kv_transfer,
                batch,
                spec,
                attempt + 1,
                waited + delay,
                tag="kv_retry",
            )
            return
        exclude: set[int] = set()
        if self.faults is not None:
            exclude = self.faults.detected_down_gpus(self._decode_gpu_set)
        t_f = estimate_kv_transfer_time(
            self.ctx,
            self.model,
            spec.k_in,
            self.prefill_stages,
            self.decode_stages,
            exclude_gpus=exclude,
        )
        # Counterfactual "KV path k x faster" = the *effective* payload
        # shrinks by k (compression / a dedicated lane): the transfer
        # completes k x sooner at the ORIGINAL flow rate. Scaling only
        # t_f would register a super-physical nbytes/t_f rate and
        # congest every concurrent collective sharing the leader links.
        kv_scale = self.cfg.kv_time_scale
        if kv_scale != 1.0:
            t_f /= kv_scale
        if t_f > 0:
            # Register each prefill->decode pair's own byte rate on its
            # own path (registering the total on the union would multiply
            # the load by the pair count and poison the contention view).
            handles = []
            for links, nbytes in kv_transfer_flows(
                self.ctx,
                self.model,
                spec.k_in,
                self.prefill_stages,
                self.decode_stages,
                exclude_gpus=exclude,
            ):
                if links:
                    handles.append(
                        self.ctx.linkstate.register(
                            links, nbytes / (kv_scale * t_f)
                        )
                    )
            if self.obs.enabled:
                self.obs.kv_transfer_span(
                    now, t_f, len(batch), spec.k_in,
                    request_ids=tuple(r.request_id for r in batch),
                )
            ev = self.queue.schedule(
                t_f, self._kv_done, batch, handles, tag="kv_done"
            )
            self._kv_inflight.append(
                {
                    "event": ev,
                    "batch": batch,
                    "spec": spec,
                    "handles": handles,
                    "attempt": attempt,
                    "waited": waited,
                }
            )
        else:
            self._kv_done(batch, [])

    def _fail_kv_transfer(
        self, batch: list[RequestState], attempt: int
    ) -> None:
        """Retry budget exhausted: fail the batch's requests for good.

        The decode pairing stayed ground-truth dead through the whole
        retry budget; the prefill side gives up holding the KV and the
        requests are lost (counted distinctly from transient
        requeue-style losses via ``kv_exhausted``).
        """
        now = self.queue.now
        self.metrics.dropped += len(batch)
        self.faults.counters.requests_lost += len(batch)
        self.faults.counters.kv_exhausted += len(batch)
        log.warning(
            "KV-transfer retry budget exhausted at t=%.3f after %d "
            "attempts: dropping %d requests",
            now,
            attempt,
            len(batch),
        )
        if self.obs.enabled:
            for r in batch:
                self.obs.request_dropped(now, r)

    def _kv_done(self, batch: list[RequestState], handles: list[int]) -> None:
        if self._kv_inflight:
            self._kv_inflight = [
                rec for rec in self._kv_inflight if rec["batch"] is not batch
            ]
        self._release(handles)
        now = self.queue.now
        for r in batch:
            r.kv_done_time = now
            r.phase = RequestPhase.DECODE_WAIT
            self.decode_pending.append(r)
        self._try_start_decode()

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------

    def _admit_decode(self) -> None:
        """Admit pending requests while KV memory and batch width allow."""
        while self.decode_pending and len(
            self.decode_active
        ) < self.cfg.max_decode_batch:
            nxt = self.decode_pending[0]
            if self.kv_used + nxt.kv_tokens > self.kv_capacity:
                break
            self.decode_pending.pop(0)
            self.kv_used += nxt.kv_tokens
            nxt.phase = RequestPhase.DECODING
            nxt.decode_start = self.queue.now
            self.decode_active.append(nxt)

    def _decode_comm_time(self, q: int) -> float:
        """Cached decode-pass sync time (refreshed periodically)."""
        self._decode_iter_counter += 1
        if (
            self._decode_comm_cache is None
            or self._decode_comm_cache[0] != q
            or self._decode_iter_counter % self.cfg.comm_refresh_every == 0
        ):
            t_n, self._decode_footprints, self._decode_decisions = (
                self._phase_comm_time(
                    self.decode_stages,
                    q,
                    decode_activation_bytes(self.model, q),
                    self.plan.decode.comm,
                )
            )
            self._decode_comm_cache = (q, t_n)
        return self._decode_comm_cache[1]

    def _try_start_decode(self) -> None:
        if self.decode_busy or self._decode_down or self.replan_hold:
            return
        sp = self._sp
        if sp is None:
            self._admit_decode()
        else:
            t0 = time.perf_counter()
            self._admit_decode()
            sp.add("engine.batch_formation", time.perf_counter() - t0)
        if not self.decode_active:
            return
        self.decode_busy = True
        q = len(self.decode_active)
        context = sum(
            r.input_len + r.tokens_generated for r in self.decode_active
        )
        t_c = self.bank.group_decode_time(
            self._decode_hw,
            q,
            context,
            self.plan.parallel.p_tens_decode,
            self.plan.parallel.p_pipe_decode,
        )
        if self.cfg.decode_compute_scale != 1.0:
            t_c /= self.cfg.decode_compute_scale
        t_n = self._decode_comm_time(q)
        duration = t_c + t_n
        handles = self._register_pass_load(self._decode_footprints, duration)
        self.metrics.decode_iterations += 1
        if self.obs.enabled:
            now = self.queue.now
            rids = tuple(r.request_id for r in self.decode_active)
            self.obs.decode_span(
                now, duration, q, context, t_c, t_n, request_ids=rids
            )
            self._emit_allreduce_spans(
                "decode", now + t_c, self._decode_decisions, rids
            )
        ev = self.queue.schedule(
            duration, self._decode_iter_done, handles, tag="decode_iter"
        )
        self._decode_inflight = (ev, handles)

    def _decode_iter_done(self, handles: list[int]) -> None:
        self._decode_inflight = None
        self._release(handles)
        now = self.queue.now
        observing = self.obs.enabled
        still_active: list[RequestState] = []
        for r in self.decode_active:
            r.tokens_generated += 1
            if r.tokens_generated >= r.output_len:
                r.finish_time = now
                r.phase = RequestPhase.FINISHED
                self.kv_used -= r.kv_tokens
                self.metrics.record_finish(r)
                if observing:
                    self.obs.request_finished(now, r)
            else:
                still_active.append(r)
        self.decode_active = still_active
        self.metrics.record_memory(now, self.kv_used, self.kv_capacity)
        if observing:
            self.obs.kv_sample(now, self.kv_used, self.kv_capacity)
        self.decode_busy = False
        self._tick_controller()
        self._try_start_decode()

    # ------------------------------------------------------------------
    # online replanning (driven by repro.core.replan.OnlineReplanner)
    # ------------------------------------------------------------------

    def apply_plan(self, new_plan: Plan) -> None:
        """Swap the deployment onto ``new_plan`` (a replan cutover).

        Request state survives: queued requests keep their positions,
        admission-waiting and decoding requests keep their (migrated)
        KV. The hardware views, KV budget and fault gates are
        recomputed for the new placement; ``kv_used`` is carried over,
        so a cutover to a smaller decode pool simply blocks admission
        until enough requests finish.
        """
        self.plan = new_plan
        self.prefill_stages = [list(s) for s in new_plan.prefill.stages]
        self.decode_stages = [list(s) for s in new_plan.decode.stages]
        self._prefill_hw = self.ctx.group_hardware(
            [g for s in self.prefill_stages for g in s]
        )
        self._decode_hw = self.ctx.group_hardware(
            [g for s in self.decode_stages for g in s]
        )
        topo = self.ctx.built.topology
        dec_min_mem = min(
            topo.nodes[g].memory_bytes
            for s in self.decode_stages
            for g in s
        )
        self.kv_budget = MemoryBudget(
            self.model,
            new_plan.parallel.p_tens_decode,
            new_plan.parallel.p_pipe_decode,
            dec_min_mem,
            r_frac=self.cfg.r_frac,
        )
        self.kv_capacity = self.kv_budget.max_cached_tokens()
        self._decode_comm_cache = None
        self._prefill_gpu_set = {g for s in self.prefill_stages for g in s}
        self._decode_gpu_set = {g for s in self.decode_stages for g in s}
        if self.faults is not None:
            self._prefill_down = self.faults.gpus_blocked(
                self._prefill_gpu_set
            )
            self._decode_down = self.faults.gpus_blocked(
                self._decode_gpu_set
            )

    # ------------------------------------------------------------------
    # fault tolerance (driven by repro.faults.FaultInjector)
    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True while a server failure blocks one of the phases."""
        return self._prefill_down or self._decode_down

    def on_switch_event(self, switch: int) -> None:
        """Invalidate cached comm pricing after a switch state change."""
        self._decode_comm_cache = None

    def on_server_down(self, now: float, server: int, gpus: set[int]) -> None:
        """Fail-stop a server: cancel its in-flight work, requeue victims.

        Requests whose prefill was running, or whose KV cache lived on
        the failed decode server, lose their progress and redo prefill;
        in-flight KV transfers time out and retry with backoff (the
        prefill side still holds the data).
        """
        lost: list[RequestState] = []
        if gpus & self._prefill_gpu_set:
            self._prefill_down = True
            if self._prefill_inflight is not None:
                ev, batch, handles = self._prefill_inflight
                ev.cancel()
                self._release(handles)
                self._prefill_inflight = None
                self.prefill_busy = False
                lost.extend(batch)
        if gpus & self._decode_gpu_set:
            self._decode_down = True
            self._decode_comm_cache = None
            if self._decode_inflight is not None:
                ev, handles = self._decode_inflight
                ev.cancel()
                self._release(handles)
                self._decode_inflight = None
                self.decode_busy = False
            # KV cache on the decode cluster is gone for every request
            # decoding or waiting there: back to prefill they go.
            for r in self.decode_active:
                self.kv_used -= r.kv_tokens
            lost.extend(self.decode_active)
            lost.extend(self.decode_pending)
            self.decode_active = []
            self.decode_pending = []
            # In-flight KV transfers time out mid-handoff.
            inflight, self._kv_inflight = self._kv_inflight, []
            for rec in inflight:
                rec["event"].cancel()
                self._release(rec["handles"])
                self._start_kv_transfer(
                    rec["batch"],
                    rec["spec"],
                    rec["attempt"] + 1,
                    rec["waited"],
                )
        log.info(
            "server %d down at t=%.3f: %d requests requeued for "
            "prefill redo",
            server,
            now,
            len(lost),
        )
        if lost:
            self._requeue_lost(lost)
        if self.replanner is not None:
            self.replanner.on_server_down(now, gpus)

    def on_server_up(self, now: float, server: int, gpus: set[int]) -> None:
        """Resume gated phases once their servers are all back."""
        log.info("server %d recovered at t=%.3f", server, now)
        if gpus & self._prefill_gpu_set:
            self._prefill_down = self.faults is not None and (
                self.faults.gpus_blocked(self._prefill_gpu_set)
            )
            if not self._prefill_down:
                self._try_start_prefill()
        if gpus & self._decode_gpu_set:
            self._decode_down = self.faults is not None and (
                self.faults.gpus_blocked(self._decode_gpu_set)
            )
            self._decode_comm_cache = None
            if not self._decode_down:
                self._try_start_decode()

    def _requeue_lost(self, lost: list[RequestState]) -> None:
        """Reset victims to QUEUED (prefill redo) at the queue front."""
        nan = float("nan")
        for r in lost:
            r.phase = RequestPhase.QUEUED
            r.tokens_generated = 0
            r.prefill_start = nan
            r.first_token_time = nan
            r.kv_done_time = nan
            r.decode_start = nan
        if self.faults is not None:
            self.faults.counters.requests_lost += len(lost)
            self.faults.counters.prefill_redos += len(lost)
        if self.obs.enabled:
            self.obs.requests_requeued(
                self.queue.now,
                len(lost),
                request_ids=tuple(r.request_id for r in lost),
            )
        # Victims keep their arrival priority: redo from the queue front.
        self.prefill_queue[:0] = lost
        self._try_start_prefill()

    # ------------------------------------------------------------------
    # controller & main loop
    # ------------------------------------------------------------------

    def _tick_controller(self) -> None:
        sp = self._sp
        if sp is None:
            self._tick_controller_inner()
        else:
            t0 = time.perf_counter()
            self._tick_controller_inner()
            sp.add("engine.controller_tick", time.perf_counter() - t0)

    def _tick_controller_inner(self) -> None:
        if self.replanner is not None:
            self.replanner.on_tick(self.queue.now)
        if self.controller is not None:
            refreshed = self.controller.tick(self.queue.now)
            if self.obs.enabled:
                self.obs.controller_tick(self.queue.now, refreshed)
                if refreshed:
                    self.obs.sample_links(self.queue.now, self.ctx.linkstate)
                    self.obs.engine_tick(self.queue.now, self)
        else:
            # Baselines still poll link counters so EWMA views stay live.
            self.ctx.linkstate.poll()
            if self.obs.enabled:
                self._poll_counter += 1
                if self._poll_counter % _BASELINE_LINK_SAMPLE_EVERY == 0:
                    self.obs.sample_links(self.queue.now, self.ctx.linkstate)
                    self.obs.engine_tick(self.queue.now, self)

    def submit(self, tr) -> RequestState:
        """Accept one routed request *now* (fleet/router entry point)."""
        req = RequestState(trace=tr)
        self._on_arrival(req)
        return req

    @property
    def queued_requests(self) -> int:
        """Requests in flight or waiting on this replica — the router's
        least-loaded dispatch signal."""
        return (
            len(self.prefill_queue)
            + len(self.decode_pending)
            + len(self.decode_active)
            + (1 if self.prefill_busy else 0)
        )

    def run(self) -> ServingMetrics:
        """Execute the full trace; returns the filled metrics object."""
        if self.trace is None:
            raise ValueError("standalone run() requires a trace")
        log.info(
            "starting run: %d requests, horizon %.1fs, observer %s",
            len(self.trace),
            self.trace.duration + self.cfg.drain_time,
            "on" if self.obs.enabled else "off",
        )
        for tr in self.trace:
            req = RequestState(trace=tr)
            self.queue.schedule_at(
                tr.arrival_time, self._on_arrival, req, tag="arrival"
            )
        horizon = self.trace.duration + self.cfg.drain_time
        sp = self._sp
        if sp is not None:
            sp.run_started()
        self.queue.run(until=horizon, profiler=sp)
        if sp is not None:
            sp.run_finished(
                self.metrics.n_finished, self.queue.events_fired
            )
        if self.faults is not None:
            self.faults.finalize(self.queue.now, self.metrics)
        if self.replanner is not None:
            self.replanner.finalize(self.metrics)
        if self.obs.enabled:
            self.obs.run_finished(self.queue.now, self)
        log.info(
            "run complete: %d finished, %d prefill batches, "
            "%d decode iterations, %d events fired",
            self.metrics.n_finished,
            self.metrics.prefill_batches,
            self.metrics.decode_iterations,
            self.queue.events_fired,
        )
        return self.metrics
