"""Matrix expansion and multi-process fan-out for scenario sweeps.

A spec's ``matrix`` table maps dotted spec paths to value lists, e.g.::

    "matrix": {"router": ["jsq", "kv-affinity"],
               "workload.rate": [0.6, 1.0]}

:func:`expand_matrix` takes the cartesian product in declaration order
and yields one concrete (validated) cell spec per combination;
:func:`run_matrix` fans the cells across worker processes and collects
their JSON-able summaries in deterministic cell order — each cell is an
independent, fully-seeded simulation, so the fan-out cannot perturb
results.
"""

from __future__ import annotations

import copy
import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.scenario.runner import run_scenario
from repro.scenario.spec import ScenarioSpec

__all__ = ["MatrixCell", "MatrixResult", "expand_matrix", "run_matrix"]


@dataclass(frozen=True)
class MatrixCell:
    """One concrete run of a matrix sweep."""

    label: str
    #: the axis assignments that produced this cell
    point: dict
    spec: ScenarioSpec


@dataclass
class MatrixResult:
    """All cell summaries of one sweep, in expansion order."""

    base: ScenarioSpec
    axes: dict
    cells: list[MatrixCell]
    #: per-cell JSON-able summaries (parallel to ``cells``)
    summaries: list[dict]


def _set_path(d: dict, path: str, value) -> None:
    parts = path.split(".")
    for part in parts[:-1]:
        d = d.setdefault(part, {})
    d[parts[-1]] = value


def _fmt_value(v) -> str:
    if isinstance(v, float):
        return f"{v:g}"
    return str(v)


def expand_matrix(spec: ScenarioSpec) -> list[MatrixCell]:
    """Concrete cell specs for every axis combination, in order."""
    if not spec.matrix:
        raise ValueError(f"spec {spec.name!r} has no matrix table")
    base = spec.to_dict()
    base.pop("matrix")
    axes = list(spec.matrix.items())
    cells: list[MatrixCell] = []
    for combo in itertools.product(*(values for _, values in axes)):
        d = copy.deepcopy(base)
        point = {}
        for (path, _), value in zip(axes, combo):
            _set_path(d, path, copy.deepcopy(value))
            point[path] = value
        label = " ".join(
            f"{path}={_fmt_value(value)}" for path, value in point.items()
        )
        d["name"] = f"{base['name']}[{label}]"
        cells.append(
            MatrixCell(
                label=label,
                point=point,
                spec=ScenarioSpec.from_dict(d, source=f"cell {label}"),
            )
        )
    return cells


def _run_cell(payload: tuple[str, dict]) -> dict:
    """Worker entry point: runs one cell, returns its summary.

    Module-level so :class:`ProcessPoolExecutor` can pickle it; the
    payload is the (label, raw spec dict) pair, both picklable.
    """
    label, raw = payload
    spec = ScenarioSpec.from_dict(raw, source=f"cell {label}")
    return run_scenario(spec, cell=label).summary


def run_matrix(
    spec: ScenarioSpec,
    processes: int = 2,
    progress=None,
) -> MatrixResult:
    """Expand ``spec.matrix`` and run every cell.

    ``processes >= 2`` fans cells across worker processes;
    ``processes <= 1`` runs them inline (debugging). ``progress`` is an
    optional callable receiving (label, summary) as cells finish, in
    expansion order.
    """
    cells = expand_matrix(spec)
    payloads = [(c.label, c.spec.to_dict()) for c in cells]
    if processes <= 1:
        summaries = [_run_cell(p) for p in payloads]
        if progress is not None:
            for cell, summary in zip(cells, summaries):
                progress(cell.label, summary)
    else:
        workers = min(processes, len(payloads))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            summaries = []
            for cell, summary in zip(cells, pool.map(_run_cell, payloads)):
                summaries.append(summary)
                if progress is not None:
                    progress(cell.label, summary)
    return MatrixResult(
        base=spec,
        axes=dict(spec.matrix or {}),
        cells=cells,
        summaries=summaries,
    )
