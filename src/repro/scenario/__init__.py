"""Declarative scenarios: spec schema, runner, matrix sweeps.

``python -m repro scenario run|matrix|validate|list`` is the CLI
surface; ``docs/SCENARIOS.md`` documents the schema.
"""

from repro.scenario.matrix import (
    MatrixCell,
    MatrixResult,
    expand_matrix,
    run_matrix,
)
from repro.scenario.runner import (
    ScenarioResult,
    build_runtime,
    run_scenario,
)
from repro.scenario.spec import (
    SLO_BY_NAME,
    ScenarioSpec,
    SpecError,
    SpecValidationError,
    TopologySpec,
    WorkloadSpec,
    load_spec,
    validate_spec,
)

__all__ = [
    "MatrixCell",
    "MatrixResult",
    "ScenarioResult",
    "ScenarioSpec",
    "SLO_BY_NAME",
    "SpecError",
    "SpecValidationError",
    "TopologySpec",
    "WorkloadSpec",
    "build_runtime",
    "expand_matrix",
    "load_spec",
    "run_matrix",
    "run_scenario",
    "validate_spec",
]
