"""Realise and execute one scenario spec.

The runner is the single translation point from declarative spec to the
simulator's constructor graph. Construction ORDER here is part of the
contract: planning and simulation are fully deterministic given the
spec's seeds, and the refactored benches assert byte-identical result
tables against their checked-in baselines — so the sequence (build
topology -> bank -> trace -> plan -> simulate) mirrors exactly what the
hand-wired benches did before the refactor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.baselines.systems import (
    SYSTEM_BY_NAME,
    build_fleet,
    build_system,
    simulate_trace,
)
from repro.core.plan import ParallelConfig
from repro.core.replan import ReplanConfig
from repro.core.objective import SlaSpec
from repro.faults.plan import FaultPlan
from repro.llm import CostModelBank
from repro.llm.models import get_model
from repro.network.builders import (
    BuiltTopology,
    build_testbed,
    build_xtracks_cluster,
)
from repro.scenario.spec import (
    _DEFAULT_GPUS,
    GPU_PROFILES,
    SLO_BY_NAME,
    ScenarioSpec,
)
from repro.serving.background import BackgroundTrafficConfig
from repro.serving.engine import EngineConfig
from repro.util.rng import make_rng
from repro.workloads.registry import get_workload
from repro.workloads.traces import Trace

__all__ = ["ScenarioResult", "build_runtime", "run_scenario"]


@dataclass
class ScenarioRuntime:
    """Realised building blocks of a spec, pre-simulation."""

    spec: ScenarioSpec
    built: BuiltTopology
    model: Any
    bank: CostModelBank
    sla: SlaSpec
    trace: Trace
    arrival_rate: float
    parallel: ParallelConfig | None


@dataclass
class ScenarioResult:
    """One executed scenario: live objects plus a JSON-able summary."""

    spec: ScenarioSpec
    trace: Trace
    #: ServingMetrics (single system) or FleetMetrics (fleet path)
    metrics: Any
    observer: Any | None
    #: JSON-able per-run digest (feeds matrix cells / sweep reports)
    summary: dict


def build_runtime(spec: ScenarioSpec) -> ScenarioRuntime:
    """Realise topology, cost bank, SLO and trace from a spec."""
    topo = spec.topology
    if topo.kind == "testbed":
        built = build_testbed(tracks=topo.tracks)
    else:
        built = build_xtracks_cluster(topo.tracks, n_units=topo.n_units)
    model = get_model(spec.model)
    gpu_names = spec.gpus or _DEFAULT_GPUS[topo.kind]
    bank = CostModelBank(
        model, {name: GPU_PROFILES[name] for name in gpu_names}
    )
    sla = (
        SLO_BY_NAME[spec.slo]
        if isinstance(spec.slo, str)
        else SlaSpec(ttft=spec.slo["ttft"], tpot=spec.slo["tpot"])
    )
    wl = spec.workload
    trace = get_workload(wl.generator).build(
        wl.rate, wl.duration, make_rng(wl.seed), **wl.params
    )
    if spec.arrival_rate is None:
        arrival_rate = wl.rate
    elif spec.arrival_rate == "trace-mean":
        arrival_rate = trace.mean_rate
    else:
        arrival_rate = float(spec.arrival_rate)
    parallel = (
        ParallelConfig(*spec.parallel) if spec.parallel is not None else None
    )
    return ScenarioRuntime(
        spec=spec,
        built=built,
        model=model,
        bank=bank,
        sla=sla,
        trace=trace,
        arrival_rate=arrival_rate,
        parallel=parallel,
    )


def _make_observer(spec: ScenarioSpec):
    if spec.observer is None:
        return None
    from repro.obs import AttributionCollector, FlightRecorder, Observer

    return Observer(
        recorder=(
            FlightRecorder() if spec.observer.get("flight") else None
        ),
        attribution=(
            AttributionCollector()
            if spec.observer.get("attribution")
            else None
        ),
    )


def _make_replan(rp: dict) -> ReplanConfig:
    kwargs = dict(rp)
    tp = kwargs.pop("target_parallel", None)
    if tp is not None:
        kwargs["target_parallel"] = ParallelConfig(*tp)
    return ReplanConfig(**kwargs)


def run_scenario(spec: ScenarioSpec, cell: str | None = None) -> ScenarioResult:
    """Execute one (non-matrix) scenario and summarise it.

    ``cell`` labels the run inside a matrix sweep (recorded in the
    summary); standalone runs leave it unset.
    """
    rt = build_runtime(spec)
    observer = _make_observer(spec)
    engine_config = (
        EngineConfig(observer=observer) if observer is not None else None
    )
    sys_spec = SYSTEM_BY_NAME[spec.system]

    if spec.n_replicas is not None:
        fleet = build_fleet(
            sys_spec,
            rt.built,
            rt.model,
            rt.bank,
            rt.sla,
            rt.trace.representative_batch(spec.forecast_q),
            arrival_rate=rt.arrival_rate,
            n_replicas=spec.n_replicas,
            forced_parallel=rt.parallel,
            engine_config=engine_config,
            router=spec.router,
        )
        metrics = fleet.run(rt.trace)
    else:
        system = build_system(
            sys_spec,
            rt.built,
            rt.model,
            rt.bank,
            rt.sla,
            rt.trace.representative_batch(spec.forecast_q),
            arrival_rate=rt.arrival_rate,
            forced_parallel=rt.parallel,
        )
        bg_cfg = bg_seed = bg_until = None
        if spec.background is not None:
            knobs = dict(spec.background)
            bg_seed = knobs.pop("seed", None)
            bg_until = knobs.pop("until", None)
            bg_cfg = BackgroundTrafficConfig(**knobs)
        metrics = simulate_trace(
            system,
            rt.trace,
            engine_config=engine_config,
            background=bg_cfg,
            background_seed=bg_seed,
            background_until=bg_until,
            fault_plan=(
                FaultPlan.from_dict(spec.faults)
                if spec.faults is not None
                else None
            ),
            replan=(
                _make_replan(spec.replan)
                if spec.replan is not None
                else None
            ),
        )

    summary: dict = {
        "scenario": spec.name,
        "system": spec.system,
        "model": spec.model,
        "offered": float(len(rt.trace)),
    }
    if cell is not None:
        summary["cell"] = cell
    summary.update(metrics.summary())
    return ScenarioResult(
        spec=spec,
        trace=rt.trace,
        metrics=metrics,
        observer=observer,
        summary=summary,
    )
