"""Declarative scenario specs: schema, validation, JSON/YAML loading.

A scenario spec is one self-contained, JSON-able description of a
serving experiment — topology, model, system, SLO, workload, optional
router/fleet/faults/background/replanning — plus an optional ``matrix``
table of axis sweeps. The spec layer is pure data: it validates and
normalises; :mod:`repro.scenario.runner` realises runtime objects from
it. Validation collects *all* field-level problems (dotted paths) in one
pass instead of failing on the first, so a spec author fixes a file in
one round trip.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, fields as dc_fields

from repro.baselines.systems import SYSTEM_BY_NAME
from repro.core.objective import (
    SLA_SIM_CHATBOT,
    SLA_SIM_SUMMARIZATION,
    SLA_TESTBED_CHATBOT,
    SLA_TESTBED_SUMMARIZATION,
    SlaSpec,
)
from repro.core.replan import ReplanConfig
from repro.faults.plan import FAULT_KINDS
from repro.llm import A100, V100
from repro.llm.models import MODEL_ZOO
from repro.serving.background import BackgroundTrafficConfig

__all__ = [
    "SLO_BY_NAME",
    "ScenarioSpec",
    "SpecError",
    "SpecValidationError",
    "TopologySpec",
    "WorkloadSpec",
    "load_spec",
    "validate_spec",
]

#: Named SLO presets matching the paper's evaluation regimes.
SLO_BY_NAME: dict[str, SlaSpec] = {
    "testbed-chatbot": SLA_TESTBED_CHATBOT,
    "testbed-summarization": SLA_TESTBED_SUMMARIZATION,
    "sim-chatbot": SLA_SIM_CHATBOT,
    "sim-summarization": SLA_SIM_SUMMARIZATION,
}

#: GPU profile names a spec's ``gpus`` list may reference.
GPU_PROFILES = {"A100": A100, "V100": V100}

#: Per-topology default GPU banks (testbed mixes A100+V100 servers,
#: the scaled clusters are A100-only) — match the benches' banks.
_DEFAULT_GPUS = {"testbed": ("A100", "V100"), "xtracks": ("A100",)}

_BACKGROUND_KEYS = {f.name for f in dc_fields(BackgroundTrafficConfig)} | {
    "seed",
    "until",
}
_REPLAN_KEYS = {f.name for f in dc_fields(ReplanConfig)}
_FAULT_EVENT_KEYS = {
    "time", "kind", "target", "duration", "factor", "loss", "slots"
}


@dataclass(frozen=True)
class SpecError:
    """One field-level validation problem."""

    path: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}: {self.message}"


class SpecValidationError(ValueError):
    """A spec failed validation; ``errors`` lists every problem found."""

    def __init__(self, errors: list[SpecError], source: str | None = None):
        self.errors = list(errors)
        self.source = source
        where = f" in {source}" if source else ""
        lines = "\n".join(f"  - {e}" for e in self.errors)
        super().__init__(
            f"invalid scenario spec{where} "
            f"({len(self.errors)} error(s)):\n{lines}"
        )


@dataclass(frozen=True)
class TopologySpec:
    """Which network to build: the Fig. 6 testbed or a scaled cluster."""

    kind: str = "testbed"
    tracks: int = 2
    #: scale units for ``xtracks`` clusters (ignored by ``testbed``)
    n_units: int = 4


@dataclass(frozen=True)
class WorkloadSpec:
    """Which trace to generate: a workload-registry name plus knobs."""

    generator: str
    rate: float
    duration: float
    seed: int = 0
    params: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ScenarioSpec:
    """One validated serving scenario (see ``docs/SCENARIOS.md``)."""

    name: str
    model: str
    workload: WorkloadSpec
    topology: TopologySpec = TopologySpec()
    system: str = "HeroServe"
    #: GPU profile names for the cost-model bank (None: topology default)
    gpus: tuple[str, ...] | None = None
    #: pinned (tp_prefill, pp_prefill, tp_decode, pp_decode), or None to
    #: let the offline planner sweep
    parallel: tuple[int, int, int, int] | None = None
    #: an SLO preset name or an explicit {"ttft": s, "tpot": s} pair
    slo: str | dict = "testbed-chatbot"
    #: planner forecast rate: None (workload rate), "trace-mean", or r/s
    arrival_rate: float | str | None = None
    #: representative-batch size fed to the planner forecast
    forecast_q: int = 8
    #: fleet routing policy name; requires ``n_replicas``
    router: str | None = None
    #: replica count — any value (even 1) selects the fleet path; None
    #: runs the single-system simulator
    n_replicas: int | None = None
    #: background cross-traffic: BackgroundTrafficConfig fields plus
    #: optional ``seed`` and ``until`` (burst horizon end, seconds)
    background: dict | None = None
    #: fault schedule: {"seed": int, "events": [FaultEvent dicts]}
    faults: dict | None = None
    #: online replanning: ReplanConfig fields; ``target_parallel`` as a
    #: 4-tuple
    replan: dict | None = None
    #: {"flight": bool, "attribution": bool} — attach an observer
    observer: dict | None = None
    #: axis sweeps: dotted spec path -> list of values
    matrix: dict | None = None

    def to_dict(self) -> dict:
        """Plain JSON-able form (inverse of ``from_dict``)."""
        d: dict = {
            "name": self.name,
            "model": self.model,
            "system": self.system,
            "topology": {
                "kind": self.topology.kind,
                "tracks": self.topology.tracks,
                "n_units": self.topology.n_units,
            },
            "workload": {
                "generator": self.workload.generator,
                "rate": self.workload.rate,
                "duration": self.workload.duration,
                "seed": self.workload.seed,
                "params": dict(self.workload.params),
            },
            "slo": self.slo,
            "forecast_q": self.forecast_q,
        }
        if self.gpus is not None:
            d["gpus"] = list(self.gpus)
        if self.parallel is not None:
            d["parallel"] = list(self.parallel)
        if self.arrival_rate is not None:
            d["arrival_rate"] = self.arrival_rate
        for key in ("router", "n_replicas", "background", "faults",
                    "replan", "observer", "matrix"):
            val = getattr(self, key)
            if val is not None:
                d[key] = val
        return d

    @classmethod
    def from_dict(
        cls, d: dict, source: str | None = None
    ) -> "ScenarioSpec":
        """Validate ``d`` and build the spec; raises
        :class:`SpecValidationError` listing every problem."""
        errors = validate_spec(d)
        if errors:
            raise SpecValidationError(errors, source=source)
        topo = dict(d.get("topology", {}))
        wl = dict(d["workload"])
        return cls(
            name=d["name"],
            model=d["model"],
            system=d.get("system", "HeroServe"),
            topology=TopologySpec(
                kind=topo.get("kind", "testbed"),
                tracks=int(topo.get("tracks", 2)),
                n_units=int(topo.get("n_units", 4)),
            ),
            gpus=tuple(d["gpus"]) if d.get("gpus") is not None else None,
            parallel=(
                tuple(int(x) for x in d["parallel"])
                if d.get("parallel") is not None
                else None
            ),
            slo=d.get("slo", "testbed-chatbot"),
            workload=WorkloadSpec(
                generator=wl["generator"],
                rate=float(wl["rate"]),
                duration=float(wl["duration"]),
                seed=int(wl.get("seed", 0)),
                params=dict(wl.get("params", {})),
            ),
            arrival_rate=d.get("arrival_rate"),
            forecast_q=int(d.get("forecast_q", 8)),
            router=d.get("router"),
            n_replicas=(
                int(d["n_replicas"])
                if d.get("n_replicas") is not None
                else None
            ),
            background=d.get("background"),
            faults=d.get("faults"),
            replan=d.get("replan"),
            observer=d.get("observer"),
            matrix=d.get("matrix"),
        )


_TOP_LEVEL_KEYS = {
    "name", "model", "system", "topology", "gpus", "parallel", "slo",
    "workload", "arrival_rate", "forecast_q", "router", "n_replicas",
    "background", "faults", "replan", "observer", "matrix",
}


def _is_number(x) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def _positive_number(errors, path, x, allow_none=False) -> None:
    if x is None and allow_none:
        return
    if not _is_number(x) or x <= 0:
        errors.append(SpecError(path, f"must be a positive number, got {x!r}"))


def validate_spec(d) -> list[SpecError]:
    """Field-level validation of a raw spec dict; returns all problems."""
    errors: list[SpecError] = []
    if not isinstance(d, dict):
        return [SpecError("$", f"spec must be a mapping, got {type(d).__name__}")]

    for key in sorted(set(d) - _TOP_LEVEL_KEYS):
        errors.append(SpecError(key, "unknown field"))

    name = d.get("name")
    if not isinstance(name, str) or not name:
        errors.append(SpecError("name", "must be a non-empty string"))

    model = d.get("model")
    if not isinstance(model, str) or model not in MODEL_ZOO:
        errors.append(SpecError(
            "model",
            f"must be one of {sorted(MODEL_ZOO)}, got {model!r}",
        ))

    system = d.get("system", "HeroServe")
    if system not in SYSTEM_BY_NAME:
        errors.append(SpecError(
            "system",
            f"must be one of {sorted(SYSTEM_BY_NAME)}, got {system!r}",
        ))

    _validate_topology(errors, d.get("topology", {}))
    _validate_gpus(errors, d.get("gpus"))
    _validate_parallel(errors, "parallel", d.get("parallel"))
    _validate_slo(errors, d.get("slo", "testbed-chatbot"))
    _validate_workload(errors, d.get("workload"))

    rate = d.get("arrival_rate")
    if rate is not None and rate != "trace-mean":
        _positive_number(errors, "arrival_rate", rate)

    q = d.get("forecast_q", 8)
    if not isinstance(q, int) or isinstance(q, bool) or q < 1:
        errors.append(SpecError(
            "forecast_q", f"must be a positive integer, got {q!r}"
        ))

    _validate_router(errors, d.get("router"), d.get("n_replicas"))
    _validate_background(errors, d.get("background"))
    _validate_faults(errors, d.get("faults"))
    _validate_replan(errors, d.get("replan"))
    _validate_observer(errors, d.get("observer"))
    _validate_matrix(errors, d.get("matrix"))

    if d.get("n_replicas") is not None:
        for key in ("background", "faults", "replan"):
            if d.get(key) is not None:
                errors.append(SpecError(
                    key,
                    "not supported on the fleet path (n_replicas set)",
                ))
    return errors


def _validate_topology(errors, topo) -> None:
    if not isinstance(topo, dict):
        errors.append(SpecError("topology", "must be a mapping"))
        return
    for key in sorted(set(topo) - {"kind", "tracks", "n_units"}):
        errors.append(SpecError(f"topology.{key}", "unknown field"))
    kind = topo.get("kind", "testbed")
    if kind not in ("testbed", "xtracks"):
        errors.append(SpecError(
            "topology.kind",
            f"must be 'testbed' or 'xtracks', got {kind!r}",
        ))
    for key in ("tracks", "n_units"):
        val = topo.get(key)
        if val is not None and (
            not isinstance(val, int) or isinstance(val, bool) or val < 1
        ):
            errors.append(SpecError(
                f"topology.{key}",
                f"must be a positive integer, got {val!r}",
            ))


def _validate_gpus(errors, gpus) -> None:
    if gpus is None:
        return
    if not isinstance(gpus, (list, tuple)) or not gpus:
        errors.append(SpecError("gpus", "must be a non-empty list"))
        return
    for i, g in enumerate(gpus):
        if g not in GPU_PROFILES:
            errors.append(SpecError(
                f"gpus[{i}]",
                f"must be one of {sorted(GPU_PROFILES)}, got {g!r}",
            ))


def _validate_parallel(errors, path, par) -> None:
    if par is None:
        return
    if not isinstance(par, (list, tuple)) or len(par) != 4:
        errors.append(SpecError(
            path,
            "must be a 4-list [tp_prefill, pp_prefill, tp_decode, "
            f"pp_decode], got {par!r}",
        ))
        return
    for i, x in enumerate(par):
        if not isinstance(x, int) or isinstance(x, bool) or x < 1:
            errors.append(SpecError(
                f"{path}[{i}]", f"must be a positive integer, got {x!r}"
            ))


def _validate_slo(errors, slo) -> None:
    if isinstance(slo, str):
        if slo not in SLO_BY_NAME:
            errors.append(SpecError(
                "slo",
                f"must be one of {sorted(SLO_BY_NAME)} or a "
                f"{{ttft, tpot}} mapping, got {slo!r}",
            ))
        return
    if not isinstance(slo, dict):
        errors.append(SpecError(
            "slo", f"must be a preset name or a mapping, got {slo!r}"
        ))
        return
    for key in sorted(set(slo) - {"ttft", "tpot"}):
        errors.append(SpecError(f"slo.{key}", "unknown field"))
    for key in ("ttft", "tpot"):
        if key not in slo:
            errors.append(SpecError(f"slo.{key}", "required"))
        else:
            _positive_number(errors, f"slo.{key}", slo[key])


def _validate_workload(errors, wl) -> None:
    if not isinstance(wl, dict):
        errors.append(SpecError(
            "workload", "required mapping {generator, rate, duration}"
        ))
        return
    from repro.workloads.registry import _REGISTRY

    for key in sorted(
        set(wl) - {"generator", "rate", "duration", "seed", "params"}
    ):
        errors.append(SpecError(f"workload.{key}", "unknown field"))
    gen_name = wl.get("generator")
    gen = None
    if gen_name not in _REGISTRY:
        errors.append(SpecError(
            "workload.generator",
            f"must be one of {sorted(_REGISTRY)}, got {gen_name!r}",
        ))
    else:
        gen = _REGISTRY[gen_name]
    _positive_number(errors, "workload.rate", wl.get("rate"))
    _positive_number(errors, "workload.duration", wl.get("duration"))
    seed = wl.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        errors.append(SpecError(
            "workload.seed", f"must be an integer, got {seed!r}"
        ))
    params = wl.get("params", {})
    if not isinstance(params, dict):
        errors.append(SpecError("workload.params", "must be a mapping"))
    elif gen is not None:
        for key in sorted(set(params) - set(gen.params)):
            errors.append(SpecError(
                f"workload.params.{key}",
                f"not a parameter of generator {gen.name!r} "
                f"(accepts: {list(gen.params)})",
            ))


def _validate_router(errors, router, n_replicas) -> None:
    if n_replicas is not None and (
        not isinstance(n_replicas, int)
        or isinstance(n_replicas, bool)
        or n_replicas < 1
    ):
        errors.append(SpecError(
            "n_replicas", f"must be a positive integer, got {n_replicas!r}"
        ))
    if router is None:
        return
    from repro.serving.router import registered_routers

    names = sorted(cls.name for cls in registered_routers())
    if router not in names:
        errors.append(SpecError(
            "router", f"must be one of {names}, got {router!r}"
        ))
    if n_replicas is None:
        errors.append(SpecError(
            "router", "requires n_replicas (the fleet path)"
        ))


def _validate_background(errors, bg) -> None:
    if bg is None:
        return
    if not isinstance(bg, dict):
        errors.append(SpecError("background", "must be a mapping"))
        return
    for key in sorted(set(bg) - _BACKGROUND_KEYS):
        errors.append(SpecError(
            f"background.{key}",
            f"unknown field (accepts: {sorted(_BACKGROUND_KEYS)})",
        ))
    for key in ("intensity", "mean_gap", "mean_duration", "until"):
        if key in bg:
            _positive_number(errors, f"background.{key}", bg[key])
    seed = bg.get("seed")
    if seed is not None and (
        not isinstance(seed, int) or isinstance(seed, bool)
    ):
        errors.append(SpecError(
            "background.seed", f"must be an integer, got {seed!r}"
        ))


def _validate_faults(errors, faults) -> None:
    if faults is None:
        return
    if not isinstance(faults, dict):
        errors.append(SpecError("faults", "must be a mapping"))
        return
    for key in sorted(set(faults) - {"seed", "events"}):
        errors.append(SpecError(f"faults.{key}", "unknown field"))
    events = faults.get("events", [])
    if not isinstance(events, list):
        errors.append(SpecError("faults.events", "must be a list"))
        return
    for i, ev in enumerate(events):
        path = f"faults.events[{i}]"
        if not isinstance(ev, dict):
            errors.append(SpecError(path, "must be a mapping"))
            continue
        for key in sorted(set(ev) - _FAULT_EVENT_KEYS):
            errors.append(SpecError(f"{path}.{key}", "unknown field"))
        if ev.get("kind") not in FAULT_KINDS:
            errors.append(SpecError(
                f"{path}.kind",
                f"must be one of {sorted(FAULT_KINDS)}, "
                f"got {ev.get('kind')!r}",
            ))
        t = ev.get("time")
        if not _is_number(t) or t < 0:
            errors.append(SpecError(
                f"{path}.time", f"must be a number >= 0, got {t!r}"
            ))
        if "target" not in ev:
            errors.append(SpecError(f"{path}.target", "required"))


def _validate_replan(errors, rp) -> None:
    if rp is None:
        return
    if not isinstance(rp, dict):
        errors.append(SpecError("replan", "must be a mapping"))
        return
    for key in sorted(set(rp) - _REPLAN_KEYS):
        errors.append(SpecError(
            f"replan.{key}",
            f"unknown field (accepts: {sorted(_REPLAN_KEYS)})",
        ))
    if "target_parallel" in rp and rp["target_parallel"] is not None:
        _validate_parallel(errors, "replan.target_parallel",
                           rp["target_parallel"])


def _validate_observer(errors, obs) -> None:
    if obs is None:
        return
    if not isinstance(obs, dict):
        errors.append(SpecError("observer", "must be a mapping"))
        return
    for key in sorted(set(obs) - {"flight", "attribution"}):
        errors.append(SpecError(f"observer.{key}", "unknown field"))
    for key in ("flight", "attribution"):
        if key in obs and not isinstance(obs[key], bool):
            errors.append(SpecError(
                f"observer.{key}", f"must be a boolean, got {obs[key]!r}"
            ))


def _validate_matrix(errors, matrix) -> None:
    if matrix is None:
        return
    if not isinstance(matrix, dict) or not matrix:
        errors.append(SpecError(
            "matrix", "must be a non-empty mapping of axis -> values"
        ))
        return
    for path, values in matrix.items():
        head = str(path).split(".", 1)[0]
        if head not in _TOP_LEVEL_KEYS or head == "matrix":
            errors.append(SpecError(
                f"matrix.{path}", f"unknown spec field {head!r}"
            ))
        if not isinstance(values, list) or not values:
            errors.append(SpecError(
                f"matrix.{path}", "axis values must be a non-empty list"
            ))


def load_spec(path: str) -> ScenarioSpec:
    """Load and validate a spec file (JSON, or YAML by extension)."""
    with open(path) as fh:
        text = fh.read()
    ext = os.path.splitext(path)[1].lower()
    if ext in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:  # pragma: no cover - PyYAML is bundled
            raise RuntimeError(
                f"{path}: YAML specs need PyYAML; use JSON instead"
            ) from None
        raw = yaml.safe_load(text)
    else:
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecValidationError(
                [SpecError("$", f"invalid JSON: {exc}")], source=path
            ) from None
    return ScenarioSpec.from_dict(raw, source=path)
