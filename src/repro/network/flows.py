"""Max-min fair flow bandwidth allocation.

The serving simulator and the aggregation-throughput benchmarks need to
know what rate each concurrent transfer actually achieves when several
flows share Ethernet links (the congestion that degrades homogeneous INA
under bursty traffic, Section II-C). We model TCP/RoCE-like fair sharing
with the classic *progressive filling* (water-filling) algorithm: rates of
all unfrozen flows grow together until some link saturates; flows across
that link freeze at the fair share; repeat.

The implementation is vectorised: flows are represented as a sparse
incidence matrix (CSR) over directed links, and each round does O(nnz)
work, so thousands of flows allocate in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix

from repro.network.topology import Topology


@dataclass(frozen=True)
class Flow:
    """A unidirectional transfer along a fixed directed-link path."""

    flow_id: int
    links: tuple[int, ...]
    #: Optional demand ceiling in bytes/s (inf = elastic flow).
    demand: float = float("inf")

    def __post_init__(self) -> None:
        if len(self.links) == 0:
            raise ValueError("flow must traverse at least one link")


def build_incidence(
    flows: list[Flow], n_links: int
) -> csr_matrix:
    """(n_flows, n_links) 0/1 incidence matrix of flows over links."""
    rows: list[int] = []
    cols: list[int] = []
    for f in flows:
        for lid in f.links:
            if not 0 <= lid < n_links:
                raise ValueError(f"flow {f.flow_id} uses bad link {lid}")
            rows.append(f.flow_id)
            cols.append(lid)
    data = np.ones(len(rows), dtype=np.float64)
    return csr_matrix(
        (data, (rows, cols)), shape=(len(flows), n_links)
    )


def max_min_fair_rates(
    flows: list[Flow],
    capacities: np.ndarray,
    tol: float = 1e-9,
) -> np.ndarray:
    """Compute max-min fair rates (bytes/s) for ``flows``.

    Parameters
    ----------
    flows:
        Flows with ``flow_id`` equal to their index in the list.
    capacities:
        Per-directed-link capacities (bytes/s).
    tol:
        Numerical slack when deciding a link is saturated.

    Returns
    -------
    ndarray of per-flow rates. Satisfies, up to ``tol``:
    (1) feasibility — no link carries more than its capacity;
    (2) demand — no flow exceeds its demand ceiling;
    (3) max-min optimality — a flow's rate can only be below another's if
        it crosses a saturated link.
    """
    n_flows = len(flows)
    if n_flows == 0:
        return np.zeros(0)
    for i, f in enumerate(flows):
        if f.flow_id != i:
            raise ValueError("flow_id must equal list index")
    capacities = np.asarray(capacities, dtype=np.float64)
    inc = build_incidence(flows, len(capacities))          # flows x links
    inc_t = inc.T.tocsr()                                  # links x flows
    flows_per_link = np.asarray(inc.sum(axis=0)).ravel()   # link degree

    rates = np.zeros(n_flows)
    active = np.ones(n_flows, dtype=bool)
    demand = np.array([f.demand for f in flows])
    residual = capacities.copy()

    # Each round freezes at least one flow, so <= n_flows iterations.
    for _ in range(n_flows + 1):
        if not active.any():
            break
        # Number of still-active flows on each link.
        n_active_per_link = inc_t @ active.astype(np.float64)
        used = n_active_per_link > 0
        # Fair-share increment each active flow could gain, limited by the
        # tightest link it crosses and by its own remaining demand.
        with np.errstate(divide="ignore", invalid="ignore"):
            link_headroom = np.where(
                used, residual / np.maximum(n_active_per_link, 1.0), np.inf
            )
        # Per-flow bottleneck increment = min headroom over its links.
        # Computed sparsely: for each flow take min over its link set.
        flow_inc = np.full(n_flows, np.inf)
        indptr, indices = inc.indptr, inc.indices
        for fi in np.nonzero(active)[0]:
            ls = indices[indptr[fi] : indptr[fi + 1]]
            flow_inc[fi] = link_headroom[ls].min()
        flow_inc = np.minimum(flow_inc, demand - rates)
        inc_step = flow_inc[active].min()
        if not np.isfinite(inc_step):
            # All remaining flows are unconstrained (cannot happen when
            # every flow crosses >= 1 finite-capacity link).
            break
        inc_step = max(inc_step, 0.0)
        # Raise all active flows by the global increment.
        rates[active] += inc_step
        # Subtract the added load from every traversed link.
        added = np.zeros(n_flows)
        added[active] = inc_step
        residual -= inc_t @ added
        residual = np.maximum(residual, 0.0)
        # Freeze flows that hit a saturated link or their demand.
        sat_links = residual <= tol * np.maximum(capacities, 1.0)
        hits_sat = (inc @ sat_links.astype(np.float64)) > 0
        finite_demand = np.isfinite(demand)
        demand_met = np.zeros_like(hits_sat)
        demand_met[finite_demand] = rates[finite_demand] >= demand[
            finite_demand
        ] - tol * np.maximum(demand[finite_demand], 1.0)
        done = hits_sat | demand_met
        newly_frozen = active & done
        if not newly_frozen.any():
            # Numerical stall: freeze the minimum-headroom flows directly.
            stuck = active & (flow_inc <= inc_step + tol)
            if not stuck.any():
                break
            active &= ~stuck
        else:
            active &= ~newly_frozen
    _ = flows_per_link  # retained for debugging views
    return rates


def flow_completion_times(
    flows: list[Flow],
    sizes_bytes: np.ndarray,
    capacities: np.ndarray,
) -> np.ndarray:
    """Static estimate of per-flow completion times at fair-share rates.

    This is the *mesoscopic* approximation used inside the serving
    simulator: rates are computed once for the set of concurrent flows
    rather than re-solved at every flow departure. It errs pessimistic
    (early-finishing flows don't donate bandwidth), which matches the
    paper's conservative latency estimates.
    """
    rates = max_min_fair_rates(flows, capacities)
    sizes = np.asarray(sizes_bytes, dtype=np.float64)
    if sizes.shape != rates.shape:
        raise ValueError("sizes and flows length mismatch")
    with np.errstate(divide="ignore"):
        return np.where(rates > 0, sizes / rates, np.inf)


def path_flow(topology: Topology, flow_id: int, link_path: list[int],
              demand: float = float("inf")) -> Flow:
    """Build a :class:`Flow` from a link path, validating contiguity."""
    for a, b in zip(link_path, link_path[1:]):
        if topology.links[a].dst != topology.links[b].src:
            raise ValueError(
                f"discontiguous link path at {a}->{b} for flow {flow_id}"
            )
    return Flow(flow_id=flow_id, links=tuple(link_path), demand=demand)
