"""Heterogeneous network topology model.

The paper models the serving system as a graph ``G = <V, E>`` (Table I)
whose nodes are GPUs (``V_g``) and switches (``V_s``) and whose edges are
either intra-server NVLink connections or inter-server Ethernet links, each
with a maximum capacity ``C(e)`` and a remaining bandwidth ``B(e)``.

This module provides that graph. Undirected physical links are stored as
*pairs of directed edges* (full duplex: each direction has the full
capacity), because flows and congestion are per-direction. Edge attributes
live in parallel NumPy arrays so routing and fair-share computations
vectorise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.util import units
from repro.util.validation import require_positive


class NodeKind(enum.IntEnum):
    """Role of a node in the serving-system graph."""

    GPU = 0
    ACCESS_SWITCH = 1
    CORE_SWITCH = 2


class LinkKind(enum.IntEnum):
    """Physical technology of a link; determines capacity and base latency."""

    NVLINK = 0
    ETHERNET = 1
    PCIE = 2


#: Default per-hop base latencies (propagation + serialisation floor).
#: The paper treats in-switch aggregation as ~1 us (Tiara / Tofino 1);
#: NVLink hops are sub-microsecond.
DEFAULT_HOP_LATENCY = {
    LinkKind.NVLINK: 0.5 * units.US,
    LinkKind.ETHERNET: 1.0 * units.US,
    LinkKind.PCIE: 1.0 * units.US,
}


@dataclass(frozen=True)
class Node:
    """A vertex of the topology graph."""

    node_id: int
    kind: NodeKind
    name: str
    #: Server this GPU belongs to (-1 for switches).
    server: int = -1
    #: GPU memory capacity in bytes (0 for switches).
    memory_bytes: float = 0.0
    #: Cluster tag assigned later by the planner ("prefill"/"decode"/"").
    tags: tuple[str, ...] = ()

    @property
    def is_gpu(self) -> bool:
        return self.kind == NodeKind.GPU

    @property
    def is_switch(self) -> bool:
        return self.kind != NodeKind.GPU


@dataclass
class Link:
    """A directed edge. Physical full-duplex links appear twice."""

    link_id: int
    src: int
    dst: int
    kind: LinkKind
    capacity: float  # bytes / second, per direction
    hop_latency: float  # seconds, fixed per-hop component

    @property
    def reverse_id(self) -> int:
        """Directed twin of this link (pairs are allocated adjacently)."""
        return self.link_id ^ 1


@dataclass
class Topology:
    """Mutable graph of GPUs and switches with typed, full-duplex links."""

    nodes: list[Node] = field(default_factory=list)
    links: list[Link] = field(default_factory=list)
    #: adjacency: node id -> list of outgoing directed link ids
    adj: list[list[int]] = field(default_factory=list)
    name: str = "topology"

    # -- construction ------------------------------------------------------

    def add_node(
        self,
        kind: NodeKind,
        name: str,
        server: int = -1,
        memory_bytes: float = 0.0,
    ) -> int:
        """Add a node and return its integer id."""
        nid = len(self.nodes)
        self.nodes.append(
            Node(nid, kind, name, server=server, memory_bytes=memory_bytes)
        )
        self.adj.append([])
        return nid

    def add_gpu(self, name: str, server: int, memory_bytes: float) -> int:
        """Add a GPU node attached to ``server`` with the given HBM size."""
        require_positive("memory_bytes", memory_bytes)
        return self.add_node(
            NodeKind.GPU, name, server=server, memory_bytes=memory_bytes
        )

    def add_switch(self, name: str, core: bool = False) -> int:
        """Add an access (default) or core switch node."""
        kind = NodeKind.CORE_SWITCH if core else NodeKind.ACCESS_SWITCH
        return self.add_node(kind, name)

    def add_link(
        self,
        u: int,
        v: int,
        kind: LinkKind,
        capacity: float,
        hop_latency: float | None = None,
    ) -> tuple[int, int]:
        """Add a full-duplex link; returns the two directed link ids."""
        require_positive("capacity", capacity)
        if u == v:
            raise ValueError(f"self-loop on node {u}")
        if hop_latency is None:
            hop_latency = DEFAULT_HOP_LATENCY[kind]
        ids = []
        for a, b in ((u, v), (v, u)):
            lid = len(self.links)
            self.links.append(Link(lid, a, b, kind, capacity, hop_latency))
            self.adj[a].append(lid)
            ids.append(lid)
        return ids[0], ids[1]

    # -- queries -----------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_links(self) -> int:
        return len(self.links)

    def gpu_ids(self) -> list[int]:
        """Ids of all GPU nodes, in insertion order."""
        return [n.node_id for n in self.nodes if n.is_gpu]

    def switch_ids(self, core: bool | None = None) -> list[int]:
        """Ids of switch nodes; filter to core/access with ``core``."""
        out = []
        for n in self.nodes:
            if not n.is_switch:
                continue
            if core is True and n.kind != NodeKind.CORE_SWITCH:
                continue
            if core is False and n.kind != NodeKind.ACCESS_SWITCH:
                continue
            out.append(n.node_id)
        return out

    def gpus_on_server(self, server: int) -> list[int]:
        """Ids of GPU nodes on a given server."""
        return [
            n.node_id
            for n in self.nodes
            if n.is_gpu and n.server == server
        ]

    def servers(self) -> list[int]:
        """Sorted list of distinct server ids present in the graph."""
        return sorted({n.server for n in self.nodes if n.is_gpu})

    def neighbors(self, u: int) -> list[int]:
        """Destination node ids of all outgoing links of ``u``."""
        return [self.links[lid].dst for lid in self.adj[u]]

    def find_link(self, u: int, v: int) -> Link | None:
        """First directed link u -> v, or ``None``."""
        for lid in self.adj[u]:
            if self.links[lid].dst == v:
                return self.links[lid]
        return None

    # -- vectorised views --------------------------------------------------

    def capacity_array(self) -> np.ndarray:
        """Per-directed-link capacities (bytes/s) as a float array."""
        return np.array([l.capacity for l in self.links], dtype=np.float64)

    def hop_latency_array(self) -> np.ndarray:
        """Per-directed-link base latencies (s) as a float array."""
        return np.array([l.hop_latency for l in self.links], dtype=np.float64)

    def kind_array(self) -> np.ndarray:
        """Per-directed-link :class:`LinkKind` values as an int array."""
        return np.array([int(l.kind) for l in self.links], dtype=np.int64)

    def link_classes(self) -> list[str]:
        """Per-directed-link *class* names, indexed by link id.

        A class is finer than :class:`LinkKind`: Ethernet splits into the
        GPU<->access-switch "leader" links (``ethernet_access``, the paper's
        intra-track bottleneck) and the switch<->switch trunks
        (``ethernet_trunk``, inter-track). NVLink and PCIe map to
        ``nvlink``/``pcie``. The what-if profiler targets interventions at
        this granularity.
        """
        out: list[str] = []
        for link in self.links:
            if link.kind == LinkKind.NVLINK:
                out.append("nvlink")
            elif link.kind == LinkKind.PCIE:
                out.append("pcie")
            elif (
                self.nodes[link.src].is_switch
                and self.nodes[link.dst].is_switch
            ):
                out.append("ethernet_trunk")
            else:
                out.append("ethernet_access")
        return out

    def endpoints_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(src, dst) node-id arrays over directed links."""
        src = np.array([l.src for l in self.links], dtype=np.int64)
        dst = np.array([l.dst for l in self.links], dtype=np.int64)
        return src, dst

    # -- integrity ---------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        for lid, link in enumerate(self.links):
            if link.link_id != lid:
                raise ValueError(f"link id mismatch at {lid}")
            twin = self.links[link.reverse_id]
            if (twin.src, twin.dst) != (link.dst, link.src):
                raise ValueError(f"directed twin mismatch for link {lid}")
            if twin.capacity != link.capacity:
                raise ValueError(f"asymmetric capacity on link pair {lid}")
            if not (0 <= link.src < self.n_nodes):
                raise ValueError(f"dangling src on link {lid}")
            if not (0 <= link.dst < self.n_nodes):
                raise ValueError(f"dangling dst on link {lid}")
        for u, out in enumerate(self.adj):
            for lid in out:
                if self.links[lid].src != u:
                    raise ValueError(f"adjacency corrupt at node {u}")
        for n in self.nodes:
            if n.is_gpu:
                intra = [
                    lid
                    for lid in self.adj[n.node_id]
                    if self.links[lid].kind
                    in (LinkKind.NVLINK, LinkKind.PCIE)
                ]
                for lid in intra:
                    other = self.nodes[self.links[lid].dst]
                    if other.server != n.server:
                        raise ValueError(
                            f"{self.links[lid].kind.name} crossing "
                            f"servers: {n.name} -> {other.name}"
                        )

    def summary(self) -> str:
        """One-line description used by example scripts and benches."""
        n_gpu = len(self.gpu_ids())
        n_acc = len(self.switch_ids(core=False))
        n_core = len(self.switch_ids(core=True))
        kinds = self.kind_array()
        n_nv = int((kinds == int(LinkKind.NVLINK)).sum()) // 2
        n_eth = int((kinds == int(LinkKind.ETHERNET)).sum()) // 2
        return (
            f"{self.name}: {n_gpu} GPUs on {len(self.servers())} servers, "
            f"{n_acc} access + {n_core} core switches, "
            f"{n_nv} NVLink + {n_eth} Ethernet links"
        )
