"""Topology builders: the paper's testbed and large-scale clusters.

Three concrete environments from the paper:

* :func:`build_testbed` — the Fig. 6 testbed: four GPU servers (two A100
  40 GB, two V100 32 GB), four GPUs each with intra-server NVLink, each GPU
  with its own 100 Gbps port, cross-connected to two programmable access
  switches ("2tracks").
* :func:`build_xtracks_cluster` — the Section V simulation clusters:
  units of servers sharing ``tracks`` access switches, access switches
  uplinked to a core layer. The paper's full scale is 1200 servers; the
  builder takes the unit structure and core ratio from the paper and
  scales the unit count, so tests/benches run a faithful miniature.
* :func:`build_fig2_example` — the 2-server micro-topology of Fig. 2 used
  to demonstrate homogeneous vs heterogeneous aggregation paths.

All bandwidths follow the paper: NVLink 600 GB/s on A100 (300 GB/s on
V100), 100 Gbps Ethernet everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.topology import LinkKind, Topology
from repro.util import units

#: Per-direction NVLink bandwidths (bytes/s). The paper quotes A100
#: NVLink as 600 GB/s total; per-direction effective is half.
NVLINK_A100 = units.gbyte_per_s(300.0)
NVLINK_V100 = units.gbyte_per_s(150.0)
ETH_100G = units.gbit_per_s(100.0)


#: PCIe 4.0 x16 effective bandwidth per direction — the intra-server
#: fallback fabric of the paper's future-work section ("for scenarios
#: without NVLink ... leverage high-performance PCIe bandwidth").
PCIE_GEN4_X16 = units.gbyte_per_s(24.0)


@dataclass(frozen=True)
class ServerSpec:
    """GPU server template used by the builders."""

    name: str
    n_gpus: int
    gpu_memory_bytes: float
    nvlink_bandwidth: float
    #: hardware profile key for the compute cost model (repro.llm)
    gpu_model: str = "A100"
    #: intra-server fabric: NVLink (default) or the PCIe fallback of the
    #: paper's future work (§VII)
    intra_kind: LinkKind = LinkKind.NVLINK
    #: PCIe topologies usually split GPUs across NUMA domains; crossing
    #: the inter-socket link costs extra bandwidth (the "cross-NUMA
    #: effects" §VII warns about). GPUs are split evenly into this many
    #: domains; cross-domain PCIe links get half bandwidth.
    numa_domains: int = 1


def pcie_server(
    name: str,
    n_gpus: int,
    gpu_memory_bytes: float,
    gpu_model: str = "A100",
    pcie_bandwidth: float = PCIE_GEN4_X16,
    numa_domains: int = 2,
) -> ServerSpec:
    """A server whose GPUs interconnect over PCIe (no NVLink)."""
    return ServerSpec(
        name=name,
        n_gpus=n_gpus,
        gpu_memory_bytes=gpu_memory_bytes,
        nvlink_bandwidth=pcie_bandwidth,
        gpu_model=gpu_model,
        intra_kind=LinkKind.PCIE,
        numa_domains=numa_domains,
    )


A100_SERVER = ServerSpec(
    name="A100",
    n_gpus=4,
    gpu_memory_bytes=units.gib(40),
    nvlink_bandwidth=NVLINK_A100,
    gpu_model="A100",
)
V100_SERVER = ServerSpec(
    name="V100",
    n_gpus=4,
    gpu_memory_bytes=units.gib(32),
    nvlink_bandwidth=NVLINK_V100,
    gpu_model="V100",
)
A100_8GPU_SERVER = ServerSpec(
    name="A100x8",
    n_gpus=8,
    gpu_memory_bytes=units.gib(40),
    nvlink_bandwidth=NVLINK_A100,
    gpu_model="A100",
)


def _add_server(
    topo: Topology,
    spec: ServerSpec,
    server_id: int,
    gpu_models: dict[int, str],
) -> list[int]:
    """Add one server's GPUs with an all-to-all intra-server fabric.

    NVLink servers get NVSwitch semantics (full bandwidth, all pairs).
    PCIe servers honour the NUMA split: pairs crossing a domain boundary
    run at half bandwidth (inter-socket link), the §VII cross-NUMA
    penalty.
    """
    gpus = []
    for g in range(spec.n_gpus):
        nid = topo.add_gpu(
            f"srv{server_id}/gpu{g}", server_id, spec.gpu_memory_bytes
        )
        gpu_models[nid] = spec.gpu_model
        gpus.append(nid)
    domains = max(1, spec.numa_domains)
    per_domain = max(1, spec.n_gpus // domains)
    for i, u in enumerate(gpus):
        for j in range(i + 1, len(gpus)):
            v = gpus[j]
            bw = spec.nvlink_bandwidth
            if (
                spec.intra_kind == LinkKind.PCIE
                and i // per_domain != j // per_domain
            ):
                bw *= 0.5  # cross-NUMA: inter-socket hop
            topo.add_link(u, v, spec.intra_kind, bw)
    return gpus


@dataclass
class BuiltTopology:
    """A topology plus the side tables the planner and simulator need."""

    topology: Topology
    #: GPU node id -> hardware model key ("A100", "V100", "L40")
    gpu_models: dict[int, str]
    #: server id -> list of GPU node ids
    server_gpus: dict[int, list[int]]
    #: access-switch node ids (INA-capable programmable switches)
    access_switches: list[int]
    #: core-switch node ids (also INA-capable in the 2-switch testbed)
    core_switches: list[int]

    def ina_capable_switches(self) -> list[int]:
        """Switches that can host in-network aggregation slots."""
        return self.access_switches + self.core_switches


def build_testbed(
    tracks: int = 2,
    eth_bandwidth: float = ETH_100G,
    server_specs: list[ServerSpec] | None = None,
) -> BuiltTopology:
    """Build the Fig. 6 testbed (default: 2 A100 + 2 V100 servers, 2tracks).

    Each GPU owns one 100 Gbps port; port ``g`` of a server connects to
    access switch ``g % tracks`` — the paper's cross-connected
    high-availability wiring. The ``tracks`` access switches are meshed
    with inter-switch links so any GPU can reach any switch.
    """
    if tracks < 1:
        raise ValueError(f"tracks must be >= 1, got {tracks}")
    specs = server_specs or [
        A100_SERVER,
        A100_SERVER,
        V100_SERVER,
        V100_SERVER,
    ]
    topo = Topology(name=f"testbed-{tracks}tracks")
    gpu_models: dict[int, str] = {}
    server_gpus: dict[int, list[int]] = {}

    switches = [topo.add_switch(f"sw{t}") for t in range(tracks)]
    for sid, spec in enumerate(specs):
        gpus = _add_server(topo, spec, sid, gpu_models)
        server_gpus[sid] = gpus
        for g, gpu in enumerate(gpus):
            topo.add_link(
                gpu, switches[g % tracks], LinkKind.ETHERNET, eth_bandwidth
            )
    # Inter-switch mesh (2x100G trunk between the two testbed switches).
    for i, u in enumerate(switches):
        for v in switches[i + 1 :]:
            topo.add_link(u, v, LinkKind.ETHERNET, 2.0 * eth_bandwidth)
    topo.validate()
    return BuiltTopology(
        topology=topo,
        gpu_models=gpu_models,
        server_gpus=server_gpus,
        access_switches=switches,
        core_switches=[],
    )


#: Paper unit structure: (servers per unit, access switches per unit,
#: access-to-core ratio). 2tracks: 400 access / 27 core ~= 14.8;
#: 8tracks: 600 access / 280 core ~= 2.14.
XTRACKS_PRESETS = {
    2: {"servers_per_unit": 6, "access_per_core": 14.8},
    8: {"servers_per_unit": 16, "access_per_core": 2.14},
}


def build_xtracks_cluster(
    tracks: int,
    n_units: int = 4,
    server_spec: ServerSpec = A100_8GPU_SERVER,
    eth_bandwidth: float = ETH_100G,
    core_uplinks: int | None = None,
) -> BuiltTopology:
    """Build a scaled ``tracks``-tracks cluster with the paper's ratios.

    ``n_units`` units, each with ``servers_per_unit`` servers and
    ``tracks`` access switches; GPU port ``g`` connects to access switch
    ``g % tracks`` of its unit. The core layer size follows the paper's
    access:core ratio, so the 2tracks miniature is core-constrained and
    the 8tracks miniature is core-rich — reproducing the congestion
    contrast of Section V-B.
    """
    if tracks not in XTRACKS_PRESETS:
        raise ValueError(
            f"tracks must be one of {sorted(XTRACKS_PRESETS)}, got {tracks}"
        )
    if n_units < 1:
        raise ValueError(f"n_units must be >= 1, got {n_units}")
    preset = XTRACKS_PRESETS[tracks]
    servers_per_unit = preset["servers_per_unit"]
    n_access = tracks * n_units
    n_core = max(1, round(n_access / preset["access_per_core"]))
    if core_uplinks is None:
        core_uplinks = min(n_core, max(2, tracks // 2))

    topo = Topology(name=f"cluster-{tracks}tracks-{n_units}units")
    gpu_models: dict[int, str] = {}
    server_gpus: dict[int, list[int]] = {}

    core = [topo.add_switch(f"core{c}", core=True) for c in range(n_core)]
    access: list[int] = []
    server_id = 0
    for unit in range(n_units):
        unit_switches = [
            topo.add_switch(f"u{unit}/acc{t}") for t in range(tracks)
        ]
        access.extend(unit_switches)
        for _ in range(servers_per_unit):
            gpus = _add_server(topo, server_spec, server_id, gpu_models)
            server_gpus[server_id] = gpus
            for g, gpu in enumerate(gpus):
                topo.add_link(
                    gpu,
                    unit_switches[g % tracks],
                    LinkKind.ETHERNET,
                    eth_bandwidth,
                )
            server_id += 1
        # Uplink each access switch to `core_uplinks` cores, staggered so
        # load spreads across the core layer.
        for t, sw in enumerate(unit_switches):
            base = (unit * tracks + t) % n_core
            for k in range(core_uplinks):
                topo.add_link(
                    sw,
                    core[(base + k) % n_core],
                    LinkKind.ETHERNET,
                    eth_bandwidth,
                )
    topo.validate()
    return BuiltTopology(
        topology=topo,
        gpu_models=gpu_models,
        server_gpus=server_gpus,
        access_switches=access,
        core_switches=core,
    )


def build_fig2_example(
    eth_bandwidth: float = ETH_100G,
    nvlink_bandwidth: float = NVLINK_A100,
) -> BuiltTopology:
    """The Fig. 2 micro-topology: 2 servers x 2 GPUs, 2 access + 1 core.

    GN1, GN2 share server 0 (NVLink); GN3, GN4 share server 1. Each server
    hangs off its own access switch; the access switches meet at the core
    switch S1. Homogeneous INA must aggregate at S1 (two Ethernet hops
    from GN1); heterogeneous INA forwards GN1's data over NVLink to GN2
    and aggregates at the access switch S2 (one Ethernet hop).
    """
    spec = ServerSpec(
        name="fig2",
        n_gpus=2,
        gpu_memory_bytes=units.gib(40),
        nvlink_bandwidth=nvlink_bandwidth,
    )
    topo = Topology(name="fig2-example")
    gpu_models: dict[int, str] = {}
    server_gpus: dict[int, list[int]] = {}
    core = topo.add_switch("S1", core=True)
    access = []
    for sid in range(2):
        sw = topo.add_switch(f"S{sid + 2}")
        access.append(sw)
        gpus = _add_server(topo, spec, sid, gpu_models)
        server_gpus[sid] = gpus
        for gpu in gpus:
            topo.add_link(gpu, sw, LinkKind.ETHERNET, eth_bandwidth)
        topo.add_link(sw, core, LinkKind.ETHERNET, eth_bandwidth)
    topo.validate()
    return BuiltTopology(
        topology=topo,
        gpu_models=gpu_models,
        server_gpus=server_gpus,
        access_switches=access,
        core_switches=[core],
    )
