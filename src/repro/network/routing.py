"""Shortest-path routing over the heterogeneous topology.

Algorithm 2 of the paper precomputes, offline and asynchronously, two
matrices over all nodes: the pairwise minimum-latency matrix ``D_(i,j)``
(``gen_latency_matrix``, Dijkstra) and the corresponding shortest-path
table ``P_(k,a)`` (``store_shortest_path``). Both are reproduced here on a
vectorised ``scipy.sparse.csgraph.dijkstra`` over the directed link graph.

The routing weight of a directed link for a transfer of ``data_bytes`` is
``hop_latency + data_bytes / bandwidth`` — the same per-hop cost the paper
uses in Eq. (10) and the KV-transfer model (Section III-C2), where the
bandwidth is the *remaining* bandwidth ``B(e)`` when a link-state view is
supplied and the raw capacity ``C(e)`` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.network.topology import Topology

#: Reference message size used for *path selection* (1 MB, the paper's
#: Fig. 2 example size). The chosen paths are then re-costed for the actual
#: transfer size; using a fixed selection size keeps the path table static,
#: as required for the offline-precomputed ``P_(k,a)``.
PATH_SELECTION_BYTES = 1_000_000.0


@dataclass
class RouteTable:
    """Precomputed all-pairs shortest paths and latencies.

    Attributes
    ----------
    latency:
        ``(n_nodes, n_nodes)`` matrix of minimum path latencies (seconds)
        for the selection message size — the paper's ``D_(i,j)``.
    predecessor:
        Dijkstra predecessor matrix used to reconstruct node paths — the
        backing store of the paper's ``P_(k,a)``.
    bandwidth:
        The per-link bandwidths (bytes/s) the table was computed against.
    """

    topology: Topology
    latency: np.ndarray
    predecessor: np.ndarray
    bandwidth: np.ndarray
    selection_bytes: float
    #: link kinds excluded from routing (homogeneous baseline view)
    exclude_kinds: frozenset = frozenset()

    # -- path reconstruction -------------------------------------------

    def node_path(self, src: int, dst: int) -> list[int]:
        """Node-id sequence of the shortest path ``src -> dst``."""
        if src == dst:
            return [src]
        if not np.isfinite(self.latency[src, dst]):
            raise ValueError(f"no path from node {src} to {dst}")
        path = [dst]
        cur = dst
        while cur != src:
            cur = int(self.predecessor[src, cur])
            if cur < 0:
                raise ValueError(f"broken predecessor chain {src}->{dst}")
            path.append(cur)
        path.reverse()
        return path

    def link_path(self, src: int, dst: int) -> list[int]:
        """Directed-link-id sequence of the shortest path ``src -> dst``.

        When parallel links exist between two nodes the one with the
        highest remaining bandwidth is taken, matching the paper's
        preference for the least-loaded route.
        """
        nodes = self.node_path(src, dst)
        excluded = {int(k) for k in self.exclude_kinds}
        out: list[int] = []
        for u, v in zip(nodes, nodes[1:]):
            best_lid = -1
            best_bw = -1.0
            for lid in self.topology.adj[u]:
                if int(self.topology.links[lid].kind) in excluded:
                    continue
                if self.topology.links[lid].dst == v:
                    bw = self.bandwidth[lid]
                    if bw > best_bw:
                        best_bw, best_lid = bw, lid
            if best_lid < 0:
                raise ValueError(f"no link {u}->{v} on reconstructed path")
            out.append(best_lid)
        return out

    def path_latency(self, src: int, dst: int, data_bytes: float) -> float:
        """Latency of the precomputed path for an actual transfer size.

        Sums ``hop_latency + data_bytes / B(e)`` over the path's links —
        the paper's ``T_{k,a} = sum_n D / B(e_n)`` (Eq. 10 form).
        """
        if src == dst:
            return 0.0
        total = 0.0
        for lid in self.link_path(src, dst):
            link = self.topology.links[lid]
            total += link.hop_latency + data_bytes / self.bandwidth[lid]
        return total

    def path_bottleneck(self, src: int, dst: int) -> float:
        """Minimum remaining bandwidth along the precomputed path."""
        if src == dst:
            return float("inf")
        return min(self.bandwidth[lid] for lid in self.link_path(src, dst))

    def hops(self, src: int, dst: int) -> int:
        """Number of links on the precomputed path."""
        return 0 if src == dst else len(self.link_path(src, dst))


def link_weights(
    topology: Topology,
    data_bytes: float = PATH_SELECTION_BYTES,
    bandwidth: np.ndarray | None = None,
    exclude_kinds: frozenset | set | None = None,
) -> np.ndarray:
    """Per-directed-link routing weights for a given message size.

    ``exclude_kinds`` removes link technologies from *routing* (their
    weight becomes infinite) — used to build the homogeneous-network view
    the baselines see, where NVLink is never a forwarding segment.
    """
    cap = topology.capacity_array() if bandwidth is None else bandwidth
    if np.any(cap <= 0):
        # Fully saturated links are unusable for new traffic; give them an
        # effectively infinite weight rather than dividing by zero.
        cap = np.where(cap <= 0, 1e-9, cap)
    w = topology.hop_latency_array() + data_bytes / cap
    if exclude_kinds:
        kinds = topology.kind_array()
        mask = np.isin(kinds, [int(k) for k in exclude_kinds])
        w = np.where(mask, np.inf, w)
    return w


def build_route_table(
    topology: Topology,
    data_bytes: float = PATH_SELECTION_BYTES,
    bandwidth: np.ndarray | None = None,
    exclude_kinds: frozenset | set | None = None,
) -> RouteTable:
    """Compute the all-pairs latency matrix and shortest-path table.

    This is ``gen_latency_matrix`` + ``store_shortest_path`` of Algorithm 2
    in a single sparse-Dijkstra sweep. ``exclude_kinds`` builds the
    homogeneous-network view (e.g. no NVLink forwarding) the paper's
    baselines operate on.
    """
    n = topology.n_nodes
    if n == 0:
        raise ValueError("empty topology")
    src, dst = topology.endpoints_arrays()
    bw = topology.capacity_array() if bandwidth is None else np.asarray(
        bandwidth, dtype=np.float64
    )
    if bw.shape != (topology.n_links,):
        raise ValueError(
            f"bandwidth must have shape ({topology.n_links},), got {bw.shape}"
        )
    weights = link_weights(topology, data_bytes, bw, exclude_kinds)
    finite = np.isfinite(weights)
    src, dst, weights, bw_kept = (
        src[finite], dst[finite], weights[finite], bw[finite]
    )
    _ = bw_kept
    # csr_matrix sums duplicate entries; for parallel links we instead want
    # the minimum weight, so reduce duplicates beforehand.
    order = np.lexsort((weights, dst, src))
    s, d, w = src[order], dst[order], weights[order]
    keep = np.ones(len(s), dtype=bool)
    keep[1:] = (s[1:] != s[:-1]) | (d[1:] != d[:-1])
    graph = csr_matrix((w[keep], (s[keep], d[keep])), shape=(n, n))
    latency, predecessor = dijkstra(
        graph, directed=True, return_predecessors=True
    )
    return RouteTable(
        topology=topology,
        latency=latency,
        predecessor=predecessor,
        bandwidth=bw,
        selection_bytes=data_bytes,
        exclude_kinds=frozenset(exclude_kinds or ()),
    )


def gpu_latency_submatrix(
    table: RouteTable, gpu_ids: list[int]
) -> np.ndarray:
    """Dense ``(len(gpu_ids), len(gpu_ids))`` latency view for grouping."""
    idx = np.asarray(gpu_ids, dtype=np.int64)
    return table.latency[np.ix_(idx, idx)]
