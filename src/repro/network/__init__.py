"""Heterogeneous network substrate: topology, routing, flows, link state."""

from repro.network.builders import (
    A100_8GPU_SERVER,
    A100_SERVER,
    ETH_100G,
    NVLINK_A100,
    NVLINK_V100,
    PCIE_GEN4_X16,
    V100_SERVER,
    BuiltTopology,
    ServerSpec,
    build_fig2_example,
    build_testbed,
    build_xtracks_cluster,
    pcie_server,
)
from repro.network.flows import (
    Flow,
    flow_completion_times,
    max_min_fair_rates,
    path_flow,
)
from repro.network.linkstate import LinkLoadTracker
from repro.network.routing import (
    RouteTable,
    build_route_table,
    gpu_latency_submatrix,
)
from repro.network.topology import LinkKind, Node, NodeKind, Topology

__all__ = [
    "A100_8GPU_SERVER",
    "A100_SERVER",
    "ETH_100G",
    "PCIE_GEN4_X16",
    "pcie_server",
    "NVLINK_A100",
    "NVLINK_V100",
    "V100_SERVER",
    "BuiltTopology",
    "ServerSpec",
    "build_fig2_example",
    "build_testbed",
    "build_xtracks_cluster",
    "Flow",
    "flow_completion_times",
    "max_min_fair_rates",
    "path_flow",
    "LinkLoadTracker",
    "RouteTable",
    "build_route_table",
    "gpu_latency_submatrix",
    "LinkKind",
    "Node",
    "NodeKind",
    "Topology",
]
