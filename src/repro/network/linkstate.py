"""Link-load tracking: the live view of remaining bandwidth ``B(e)``.

The paper's agents poll hardware counters on switches and DCGM on GPU
servers to obtain per-link utilisation; the central controller aggregates
them. Here a :class:`LinkLoadTracker` plays that role for the simulator:
components *register* sustained loads (bytes/s) on directed links and the
tracker answers ``B(e) = max(C(e) - load(e), floor)`` plus utilisation
ratios, all as NumPy arrays so the planner and the online scheduler can
consume them vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.topology import Topology

#: Never report less than this fraction of capacity as available, mirroring
#: the transport layer's ability to squeeze some goodput through a busy
#: link rather than fully starving (and avoiding divide-by-zero downstream).
MIN_AVAILABLE_FRACTION = 0.02


@dataclass
class LinkLoadTracker:
    """Registered sustained loads over directed links.

    Loads are additive: each registration returns a handle that must be
    released. An exponentially-weighted *utilisation history* is kept for
    the online scheduler's periodic penalty refresh (Eq. 18 uses monitored
    ``B(e*)`` of intersecting links).
    """

    topology: Topology
    ewma_alpha: float = 0.3
    _capacity: np.ndarray = field(init=False)
    _base_capacity: np.ndarray = field(init=False)
    _degrade: dict[int, float] = field(default_factory=dict, init=False)
    #: what-if intervention scales (absolute, per link: capacity =
    #: base * scale * degrade); distinct from fault degradation so a
    #: counterfactually upgraded link can still brown out.
    _scale: dict[int, float] = field(default_factory=dict, init=False)
    _load: np.ndarray = field(init=False)
    _ewma_util: np.ndarray = field(init=False)
    _next_handle: int = field(default=0, init=False)
    _registrations: dict[int, tuple[np.ndarray, float]] = field(
        default_factory=dict, init=False
    )
    #: tolerated double-releases (each one is a caller bug worth counting)
    double_releases: int = field(default=0, init=False)
    #: monotonic mutation counter: bumped on every register/release/
    #: degradation/reset, so caches keyed on this tracker's state (the
    #: planner's estimation cache) can detect staleness in O(1).
    version: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha in (0,1], got {self.ewma_alpha}")
        self._base_capacity = self.topology.capacity_array()
        self._capacity = self._base_capacity.copy()
        self._load = np.zeros_like(self._capacity)
        self._ewma_util = np.zeros_like(self._capacity)

    # -- registration ----------------------------------------------------

    def register(self, link_ids: list[int] | np.ndarray, rate: float) -> int:
        """Add ``rate`` bytes/s of sustained load on each link; returns handle."""
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        ids = np.asarray(link_ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= len(self._load)):
            raise ValueError("link id out of range")
        np.add.at(self._load, ids, rate)
        self.version += 1
        handle = self._next_handle
        self._next_handle += 1
        self._registrations[handle] = (ids, rate)
        return handle

    def release(self, handle: int, strict: bool = True) -> None:
        """Remove a previously registered load.

        An unknown handle means the caller double-released (or released
        after :meth:`reset`). By default that raises a descriptive
        ``KeyError``; with ``strict=False`` it is tolerated and counted
        in :attr:`double_releases` instead — failover paths that may
        race a cancellation use this so the leak stays visible without
        killing a long simulation.
        """
        entry = self._registrations.pop(handle, None)
        if entry is None:
            if strict:
                raise KeyError(
                    f"link-load handle {handle!r} is not registered: it was "
                    "already released, invalidated by reset(), or never "
                    "issued by this tracker"
                )
            self.double_releases += 1
            return
        ids, rate = entry
        np.add.at(self._load, ids, -rate)
        self.version += 1
        # Guard against floating-point drift below zero.
        np.maximum(self._load, 0.0, out=self._load)

    def active_registrations(self) -> int:
        """Number of currently registered loads."""
        return len(self._registrations)

    # -- queries -----------------------------------------------------------

    @property
    def capacity(self) -> np.ndarray:
        """Per-link capacity ``C(e)`` (bytes/s); do not mutate.

        Reflects any active fault-injected degradations; the pristine
        values live in :meth:`base_capacity`.
        """
        return self._capacity

    @property
    def base_capacity(self) -> np.ndarray:
        """Undegraded per-link capacity; do not mutate."""
        return self._base_capacity

    # -- fault injection ---------------------------------------------------

    def _recompute_capacity(self, link_id: int) -> None:
        self._capacity[link_id] = (
            self._base_capacity[link_id]
            * self._scale.get(link_id, 1.0)
            * self._degrade.get(link_id, 1.0)
        )

    def set_link_factor(self, link_id: int, factor: float) -> None:
        """Scale one directed link's capacity to ``factor``x its base.

        Models brownouts (capacity cuts, loss-induced goodput collapse)
        injected by :mod:`repro.faults`. ``factor=1`` restores the link.
        Composes multiplicatively with any what-if intervention scale
        (:meth:`scale_links`).
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        if not 0 <= link_id < len(self._capacity):
            raise ValueError(f"link id {link_id} out of range")
        if factor >= 1.0:
            self._degrade.pop(link_id, None)
        else:
            self._degrade[link_id] = factor
        self._recompute_capacity(link_id)
        self.version += 1

    def degraded_links(self) -> dict[int, float]:
        """Currently degraded links as ``{link_id: factor}``."""
        return dict(self._degrade)

    # -- what-if interventions ---------------------------------------------

    def scale_links(
        self, link_ids: list[int] | np.ndarray, factor: float
    ) -> None:
        """Set (not multiply) a counterfactual capacity scale on links.

        Used by the what-if profiler (:mod:`repro.obs.whatif`) to model
        "what if this link class were ``factor``x faster" without forking
        the topology builders. Unlike :meth:`set_link_factor` the factor
        may exceed 1 (upgrades); the call is idempotent so re-applying a
        config to a shared tracker cannot compound. ``factor=1`` clears.
        """
        if factor <= 0.0:
            raise ValueError(f"scale factor must be > 0, got {factor}")
        for link_id in np.asarray(link_ids, dtype=np.int64).tolist():
            if not 0 <= link_id < len(self._capacity):
                raise ValueError(f"link id {link_id} out of range")
            if factor == 1.0:
                self._scale.pop(link_id, None)
            else:
                self._scale[link_id] = factor
            self._recompute_capacity(link_id)
        self.version += 1

    def scale_class(self, selector: str, factor: float) -> int:
        """Scale every link whose class (or kind) matches ``selector``.

        ``selector`` is a class name from
        :meth:`~repro.network.topology.Topology.link_classes`
        (``nvlink``/``pcie``/``ethernet_access``/``ethernet_trunk``) or a
        raw kind name (``ethernet``). Returns the number of links scaled
        (0 when the topology has no such links — not an error, so one
        intervention catalog spans topologies).
        """
        classes = self.class_names()
        kinds = self.kind_names()
        vocab = set(classes) | set(kinds) | {
            "nvlink", "pcie", "ethernet", "ethernet_access", "ethernet_trunk"
        }
        if selector not in vocab:
            raise ValueError(
                f"unknown link selector {selector!r}; expected one of "
                f"{sorted(vocab)}"
            )
        ids = [
            i
            for i in range(len(self._capacity))
            if classes[i] == selector or kinds[i] == selector
        ]
        if ids:
            self.scale_links(ids, factor)
        return len(ids)

    def scaled_links(self) -> dict[int, float]:
        """Active intervention scales as ``{link_id: factor}``."""
        return dict(self._scale)

    def load(self) -> np.ndarray:
        """Copy of the per-link registered load (bytes/s)."""
        return self._load.copy()

    def available(self) -> np.ndarray:
        """Remaining bandwidth ``B(e)`` per directed link (bytes/s)."""
        floor = MIN_AVAILABLE_FRACTION * self._capacity
        return np.maximum(self._capacity - self._load, floor)

    def utilization(self) -> np.ndarray:
        """Instantaneous ``load / capacity`` per directed link (can be >1)."""
        return self._load / self._capacity

    def available_on(self, link_ids: list[int] | np.ndarray) -> np.ndarray:
        """``B(e)`` restricted to the given links."""
        return self.available()[np.asarray(link_ids, dtype=np.int64)]

    def path_bottleneck(self, link_ids: list[int]) -> float:
        """``min_e B(e)`` over a path — the Eq. 11 denominator."""
        if not link_ids:
            return float("inf")
        return float(self.available_on(link_ids).min())

    def path_max_utilization(self, link_ids: list[int]) -> float:
        """``max_e load/C`` over a path — the policy cost base of §III-D."""
        if not link_ids:
            return 0.0
        ids = np.asarray(link_ids, dtype=np.int64)
        return float((self._load[ids] / self._capacity[ids]).max())

    # -- monitoring --------------------------------------------------------

    def _kind_names(self) -> list[str]:
        from repro.network.topology import LinkKind

        if not hasattr(self, "_kind_name_cache"):
            kinds = self.topology.kind_array()
            self._kind_name_cache = [
                LinkKind(int(k)).name.lower() for k in kinds
            ]
        return self._kind_name_cache

    def kind_names(self) -> list[str]:
        """Per-link kind names (``"ethernet"``, ``"nvlink"``, ...)
        indexed by link id — the attribution layer labels congested
        links with these."""
        return self._kind_names()

    def class_names(self) -> list[str]:
        """Per-link class names (``ethernet_access``/``ethernet_trunk``/
        ``nvlink``/``pcie``) indexed by link id; cached."""
        if not hasattr(self, "_class_name_cache"):
            self._class_name_cache = self.topology.link_classes()
        return self._class_name_cache

    def utilization_by_class(self) -> dict[str, tuple[float, float]]:
        """``{class: (mean, max)}`` instantaneous utilisation per link
        class — the finer-grained sibling of :meth:`utilization_by_kind`
        that separates leader/access Ethernet from inter-track trunks."""
        util = self.utilization()
        names = self.class_names()
        out: dict[str, tuple[float, float]] = {}
        for cls in sorted(set(names)):
            mask = np.array([n == cls for n in names])
            u = util[mask]
            if u.size:
                out[cls] = (float(u.mean()), float(u.max()))
        return out

    def utilization_by_kind(self) -> dict[str, tuple[float, float]]:
        """``{kind: (mean, max)}`` instantaneous utilisation per link kind.

        The aggregate the observability layer exports as gauges — the
        simulator's stand-in for the per-technology dashboards built from
        DCGM (NVLink/PCIe) and switch counters (Ethernet) in §III-D.
        """
        util = self.utilization()
        names = self._kind_names()
        out: dict[str, tuple[float, float]] = {}
        for kind in sorted(set(names)):
            mask = np.array([n == kind for n in names])
            u = util[mask]
            if u.size:
                out[kind] = (float(u.mean()), float(u.max()))
        return out

    def busy_links(
        self, min_util: float = 0.0
    ) -> list[tuple[int, str, float]]:
        """``(link_id, kind, utilisation)`` for links above ``min_util``.

        Bounded export for per-link gauges: idle links are skipped so a
        large fabric does not flood the metrics snapshot with zeros.
        """
        util = self.utilization()
        names = self._kind_names()
        return [
            (int(i), names[i], float(u))
            for i, u in enumerate(util)
            if u > min_util
        ]

    def poll(self) -> np.ndarray:
        """Update and return the EWMA utilisation (the 'hardware counters').

        Called periodically by the central controller in the prototype;
        the simulator calls it on its monitoring cadence.
        """
        inst = self.utilization()
        self._ewma_util *= 1.0 - self.ewma_alpha
        self._ewma_util += self.ewma_alpha * inst
        return self._ewma_util.copy()

    def ewma_utilization(self) -> np.ndarray:
        """Last EWMA utilisation snapshot without updating it."""
        return self._ewma_util.copy()

    def reset(self) -> None:
        """Drop all registrations, degradations, intervention scales,
        and history (between benchmark runs)."""
        self._load[:] = 0.0
        self._ewma_util[:] = 0.0
        self._registrations.clear()
        self._degrade.clear()
        self._scale.clear()
        self._capacity[:] = self._base_capacity
        self.version += 1
