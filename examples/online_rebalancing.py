#!/usr/bin/env python
"""Load-aware online scheduling in action (§III-D, Fig. 5).

Builds the policy selection table for a cross-server tensor-parallel
group, then injects congestion onto the links of whatever policy the
scheduler currently favours and shows the table steering traffic to the
alternative route — the Eq. 16-18 machinery (virtual utilisation, load
penalties, periodic refresh from monitored link state) narrated step by
step.

Run:  python examples/online_rebalancing.py
"""

from repro import CommContext, SchemeKind, build_testbed
from repro.core import LoadAwareScheduler, table_stats
from repro.network import LinkLoadTracker
from repro.util import print_table, units


def show_table(sched, label):
    s = table_stats(sched.table)
    print_table(
        ["policy", "b_c (virtual util)", "times selected"],
        [
            [n, f"{b:.3f}", k]
            for n, b, k in zip(s.names, s.b, s.selections)
        ],
        title=label,
    )


def main() -> None:
    built = build_testbed()
    base = CommContext.from_built(built, heterogeneous=True)
    ctx = CommContext(
        built=built,
        route_table=base.route_table,
        linkstate=LinkLoadTracker(built.topology),
        heterogeneous=True,
    )
    group = built.topology.gpu_ids()[:8]  # TP8 across both A100 servers
    sched = LoadAwareScheduler(
        ctx, group, SchemeKind.HYBRID, n_switch_candidates=2
    )
    data = 8_000_000  # 8 MB per all-reduce step

    print("Phase 1: idle network — ten all-reduce calls")
    for _ in range(10):
        d = sched.decide(data)
    show_table(sched, "policy cost table after phase 1")
    preferred = max(
        sched.table.policies,
        key=lambda p: sched.table.selections[p.policy_id],
    )
    print(
        f"preferred policy: {preferred.name} "
        f"(last step {units.fmt_seconds(d.step_time)})"
    )
    print()

    print(
        f"Phase 2: congesting every link of {preferred.name!r} at 90% "
        "and refreshing from monitored counters"
    )
    ctx.linkstate.register(list(preferred.links), 0.9 * 12.5e9)
    for _ in range(5):
        ctx.linkstate.poll()
    sched.refresh()

    before = sched.table.selections.copy()
    for _ in range(10):
        d = sched.decide(data)
    after = sched.table.selections - before
    show_table(sched, "policy cost table after phase 2")
    rerouted = max(
        sched.table.policies, key=lambda p: after[p.policy_id]
    )
    print(
        f"traffic moved to: {rerouted.name} "
        f"(last step {units.fmt_seconds(d.step_time)})"
    )
    assert rerouted.policy_id != preferred.policy_id, (
        "scheduler failed to reroute around congestion"
    )
    print("\nThe load-aware scheduler routed around the congested links.")


if __name__ == "__main__":
    main()
