#!/usr/bin/env python
"""Quickstart: plan and serve OPT-66B on the paper's testbed.

Builds the Fig. 6 testbed (2 A100 + 2 V100 servers, two programmable
switches), runs HeroServe's offline planner for a ShareGPT-like chatbot
workload, simulates a minute of traffic, and prints the plan plus the
latency/SLA metrics the paper reports.

Run:  python examples/quickstart.py
"""

from repro import (
    HEROSERVE,
    SLA_TESTBED_CHATBOT,
    OPT_66B,
    CostModelBank,
    Observer,
    build_system,
    build_testbed,
    generate_sharegpt_trace,
    simulate_trace,
)
from repro.llm import A100, V100
from repro.obs import FlightRecorder, SLOMonitor, default_slo_targets, write_report
from repro.serving import EngineConfig
from repro.util import print_table, units
from repro.util.rng import make_rng


def main() -> None:
    rate = 1.0  # requests/s offered to the deployment
    built = build_testbed()
    print(built.topology.summary())
    print()

    # Fit the Eq. 12-13 compute cost model for both GPU types.
    bank = CostModelBank(OPT_66B, {"A100": A100, "V100": V100})

    # A minute of chatbot traffic; the planner sees its forecast batch.
    trace = generate_sharegpt_trace(rate, 60.0, make_rng(0))
    forecast = trace.representative_batch(8)

    system = build_system(
        HEROSERVE,
        built,
        OPT_66B,
        bank,
        SLA_TESTBED_CHATBOT,
        forecast,
        arrival_rate=rate,
    )
    print("Offline plan")
    print("------------")
    print(system.plan.summary())
    print()

    # Observe the run: SLO burn-rate alerts + flight-recorder samples.
    obs = Observer(
        slo=SLOMonitor(default_slo_targets(SLA_TESTBED_CHATBOT)),
        recorder=FlightRecorder(),
    )
    metrics = simulate_trace(
        system, trace, engine_config=EngineConfig(observer=obs)
    )
    s = metrics.summary()
    print_table(
        ["metric", "value"],
        [
            ["requests served", int(s["finished"])],
            ["SLA attainment", f"{s['attainment']:.1%}"],
            ["mean TTFT", units.fmt_seconds(s["mean_ttft_s"])],
            ["p90 TTFT", units.fmt_seconds(s["p90_ttft_s"])],
            ["mean TPOT", units.fmt_seconds(s["mean_tpot_s"])],
            ["mean KV-memory utilisation", f"{s['mean_mem_util']:.1%}"],
            ["prefill batches", int(s["prefill_batches"])],
            ["decode iterations", int(s["decode_iterations"])],
        ],
        title=f"HeroServe on the testbed, chatbot @ {rate} req/s",
    )

    # One self-contained HTML dashboard for the run we just observed.
    write_report("report.html", observer=obs, serving_metrics=metrics,
                 title=f"quickstart — HeroServe @ {rate} req/s")
    print("\nwrote report.html")


if __name__ == "__main__":
    main()
