#!/usr/bin/env python
"""Chatbot serving: HeroServe vs DistServe / DS-ATP / DS-SwitchML.

A small-scale rendition of the Fig. 7(a)/(b) comparison: all four systems
are deployed with the paper's cross-server parallelism (TP8 prefill on
the A100 servers, TP8 decode on the V100 servers) and replay the same
ShareGPT-like trace; the table shows why HeroServe's hybrid scheduling
wins — lower synchronisation latency, hence lower TTFT/TPOT and higher
SLA attainment at the same rate.

Run:  python examples/chatbot_vs_baselines.py [rate]
"""

import sys

from repro import (
    ALL_SYSTEMS,
    SLA_TESTBED_CHATBOT,
    OPT_66B,
    CostModelBank,
    build_system,
    build_testbed,
    generate_sharegpt_trace,
    simulate_trace,
)
from repro.core.plan import ParallelConfig
from repro.llm import A100, V100
from repro.util import print_table
from repro.util.rng import make_rng

#: The paper's evaluated regime: tensor parallelism spanning servers.
CROSS_SERVER = ParallelConfig(8, 1, 8, 1)


def main() -> None:
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 1.2
    built = build_testbed()
    bank = CostModelBank(OPT_66B, {"A100": A100, "V100": V100})
    trace = generate_sharegpt_trace(rate, 90.0, make_rng(7))
    forecast = trace.representative_batch(8)

    rows = []
    for spec in ALL_SYSTEMS:
        system = build_system(
            spec,
            built,
            OPT_66B,
            bank,
            SLA_TESTBED_CHATBOT,
            forecast,
            arrival_rate=rate,
            forced_parallel=CROSS_SERVER,
        )
        m = simulate_trace(system, trace)
        rows.append(
            [
                spec.name,
                f"{m.attainment():.1%}",
                f"{m.mean_ttft() * 1e3:.0f}",
                f"{m.p90_ttft() * 1e3:.0f}",
                f"{m.mean_tpot() * 1e3:.1f}",
                f"{m.p90_tpot() * 1e3:.1f}",
            ]
        )
    print_table(
        ["system", "SLA att.", "TTFT ms", "p90 TTFT", "TPOT ms", "p90 TPOT"],
        rows,
        title=(
            f"OPT-66B chatbot on the testbed @ {rate} req/s "
            f"({len(trace)} requests, TP8 prefill / TP8 decode)"
        ),
    )
    print(
        "HeroServe offloads tensor-parallel synchronisation onto NVLink\n"
        "and aggregates at the nearest switch; the baselines push every\n"
        "byte over 100G Ethernet."
    )


if __name__ == "__main__":
    main()
