#!/usr/bin/env python
"""Summarisation serving with LongBench-like long prompts.

The paper's second testbed workload (Fig. 7(c)/(d)): prompts of several
thousand tokens with short summaries, SLA 15 s TTFT / 0.15 s TPOT. Long
prompts make the prefill all-reduce payloads an order of magnitude
larger than the chatbot's (K_in * h bytes per synchronisation step), so
the communication-scheduling gap between systems widens — exactly the
paper's observation that HeroServe's TTFT advantage grows with input
length.

Run:  python examples/summarization_longbench.py [rate]
"""

import sys

from repro import (
    ALL_SYSTEMS,
    OPT_66B,
    CostModelBank,
    build_system,
    build_testbed,
    generate_longbench_trace,
    simulate_trace,
)
from repro.core import SLA_TESTBED_SUMMARIZATION
from repro.core.plan import ParallelConfig
from repro.llm import A100, V100
from repro.util import print_table
from repro.util.rng import make_rng

CROSS_SERVER = ParallelConfig(8, 1, 8, 1)


def main() -> None:
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 0.08
    built = build_testbed()
    bank = CostModelBank(OPT_66B, {"A100": A100, "V100": V100})
    trace = generate_longbench_trace(rate, 120.0, make_rng(17))
    stats = trace.stats()
    print(
        f"LongBench-like trace: {len(trace)} requests, "
        f"mean prompt {stats['input_mean']:.0f} tokens, "
        f"mean summary {stats['output_mean']:.0f} tokens"
    )
    forecast = trace.representative_batch(4)

    rows = []
    for spec in ALL_SYSTEMS:
        system = build_system(
            spec,
            built,
            OPT_66B,
            bank,
            SLA_TESTBED_SUMMARIZATION,
            forecast,
            arrival_rate=rate,
            forced_parallel=CROSS_SERVER,
        )
        m = simulate_trace(system, trace)
        rows.append(
            [
                spec.name,
                f"{m.attainment():.1%}",
                f"{m.mean_ttft():.2f}",
                f"{m.mean_tpot() * 1e3:.1f}",
                f"{m.mean_memory_utilization():.1%}",
            ]
        )
    print_table(
        ["system", "SLA att.", "TTFT s", "TPOT ms", "KV mem util"],
        rows,
        title=(
            f"OPT-66B summarisation on the testbed @ {rate} req/s "
            f"(SLA {SLA_TESTBED_SUMMARIZATION.ttft:.0f}s / "
            f"{SLA_TESTBED_SUMMARIZATION.tpot * 1e3:.0f}ms)"
        ),
    )


if __name__ == "__main__":
    main()
