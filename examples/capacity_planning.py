#!/usr/bin/env python
"""Capacity planning with the offline planner (Algorithm 1).

Walks the planner's machinery in the open: candidate generation with the
memory filter, the Algorithm 2 grouping and INA/ring mode selection per
candidate, the Pollaczek-Khinchine queueing objective, and the final
argmax-H plan — for each of the four communication schemes, plus the
heuristic-vs-exhaustive solve-time comparison of §III-C3.

Run:  python examples/capacity_planning.py
"""

from repro import (
    SLA_TESTBED_CHATBOT,
    OPT_66B,
    BatchSpec,
    CommContext,
    CostModelBank,
    OfflinePlanner,
    SchemeKind,
    build_testbed,
)
from repro.core import generate_candidates
from repro.core.planner import ExhaustivePlanner, split_pools
from repro.llm import A100, V100
from repro.util import print_table
import numpy as np


def main() -> None:
    built = build_testbed()
    bank = CostModelBank(OPT_66B, {"A100": A100, "V100": V100})
    batch = BatchSpec.uniform(8, 256, 220)
    rate = 0.5

    # -- step 1: candidate space -----------------------------------------
    pre_pool, dec_pool = split_pools(built)
    mems = lambda pool: np.array(  # noqa: E731 - tiny example helper
        [built.topology.nodes[g].memory_bytes for g in pool]
    )
    space = generate_candidates(OPT_66B, mems(pre_pool), mems(dec_pool))
    print(
        f"candidates: {len(space.candidates)} "
        f"(min GPUs: prefill {space.min_gpus_prefill}, "
        f"decode {space.min_gpus_decode})"
    )
    for c in space.candidates[:5]:
        print("  ", c)
    print("   ...")
    print()

    # -- step 2: plan under every scheme ----------------------------------
    rows = []
    for scheme in SchemeKind:
        hetero = scheme == SchemeKind.HYBRID
        ctx = CommContext.from_built(built, heterogeneous=hetero)
        planner = OfflinePlanner(
            ctx, OPT_66B, bank, SLA_TESTBED_CHATBOT, scheme
        )
        rep = planner.plan(batch, arrival_rate=rate)
        p = rep.plan
        rows.append(
            [
                scheme.value,
                str(p.parallel) if p else "-",
                f"{p.t_prefill * 1e3:.0f}" if p else "-",
                f"{p.t_decode * 1e3:.1f}" if p else "-",
                f"{p.scalability:.3f}" if p else "-",
                f"{rep.wall_time:.2f}",
            ]
        )
    print_table(
        ["scheme", "chosen P_all", "TTFT ms", "TPOT ms", "H req/s", "solve s"],
        rows,
        title="Planner outcome per communication scheme",
    )

    # -- step 3: heuristic vs exhaustive solve time ------------------------
    ctx = CommContext.from_built(built, heterogeneous=True)
    fast = OfflinePlanner(
        ctx, OPT_66B, bank, SLA_TESTBED_CHATBOT, SchemeKind.HYBRID
    ).plan(batch, rate)
    slow = ExhaustivePlanner(
        ctx, OPT_66B, bank, SLA_TESTBED_CHATBOT, SchemeKind.HYBRID
    ).plan(batch, rate)
    saving = 1.0 - fast.wall_time / slow.wall_time if slow.wall_time else 0.0
    print_table(
        ["planner", "candidates", "wall s", "best H"],
        [
            [
                "heuristic (Alg. 1)",
                fast.candidates_evaluated,
                f"{fast.wall_time:.2f}",
                f"{fast.plan.scalability:.3f}",
            ],
            [
                "exhaustive sweep",
                slow.candidates_evaluated,
                f"{slow.wall_time:.2f}",
                f"{slow.plan.scalability:.3f}",
            ],
        ],
        title=f"Solve-time comparison (heuristic saves {saving:.0%})",
    )


if __name__ == "__main__":
    main()
