#!/usr/bin/env python
"""Replica fleet + rapid scale-in/out (the paper's §VII future work).

Three HeroServe replicas are planned on disjoint server pods of a
2tracks cluster, sharing one Ethernet fabric (their traffic contends).
A load ramp arrives — quiet, a 3x burst, quiet again — and the
autoscaler activates/drains replicas to track it, while the
join-shortest-queue router keeps the active replicas balanced.

Run:  python examples/autoscaling_fleet.py
"""

import numpy as np

from repro import HEROSERVE, OPT_175B, CostModelBank
from repro.baselines import build_fleet
from repro.core import SLA_SIM_CHATBOT
from repro.core.plan import ParallelConfig
from repro.llm import A100
from repro.network import build_xtracks_cluster
from repro.serving import AutoScaler, estimate_replica_capacity
from repro.util import print_table
from repro.util.rng import make_rng
from repro.workloads import Trace, TraceRequest
from repro.workloads.sharegpt import ShareGPTConfig, sample_lengths


def ramp_trace(rng) -> Trace:
    """~0.5 req/s, then a 2-minute ~3 req/s burst, then quiet again."""
    times = np.concatenate(
        [
            np.sort(rng.uniform(0, 60, 30)),
            np.sort(rng.uniform(60, 180, 360)),
            np.sort(rng.uniform(180, 240, 30)),
        ]
    )
    ins, outs = sample_lengths(len(times), ShareGPTConfig(), rng)
    return Trace(
        "ramp",
        [
            TraceRequest(i, float(t), int(a), int(b))
            for i, (t, a, b) in enumerate(zip(times, ins, outs))
        ],
    )


def main() -> None:
    built = build_xtracks_cluster(2, n_units=2)
    print(built.topology.summary())
    bank = CostModelBank(OPT_175B, {"A100": A100})
    rng = make_rng(5)
    trace = ramp_trace(rng)
    forecast = trace.representative_batch(8)

    fleet = build_fleet(
        HEROSERVE,
        built,
        OPT_175B,
        bank,
        SLA_SIM_CHATBOT,
        forecast,
        arrival_rate=2.0,
        n_replicas=3,
        forced_parallel=ParallelConfig(16, 1, 16, 1),
    )
    capacity = estimate_replica_capacity(fleet.replicas[0].plan, forecast)
    print(f"\nper-replica capacity estimate: {capacity:.2f} req/s")

    # Start lean: one active replica; the scaler grows the fleet.
    fleet.set_active(1, False)
    fleet.set_active(2, False)
    scaler = AutoScaler(
        fleet, fleet.queue, replica_capacity=capacity, window=10.0
    )
    scaler.start(horizon=trace.duration + 200)

    metrics = fleet.run(trace)
    print_table(
        ["metric", "value"],
        [
            ["requests served", metrics.n_finished],
            ["SLA attainment", f"{metrics.attainment():.1%}"],
            ["mean TTFT", f"{metrics.mean_ttft() * 1e3:.0f} ms"],
            ["mean TPOT", f"{metrics.mean_tpot() * 1e3:.1f} ms"],
            ["routed per replica", str(metrics.routed)],
        ],
        title="fleet results over the load ramp",
    )
    print_table(
        ["t", "action", "active", "observed r/s", "capacity r/s"],
        [
            [
                f"{a.time:.0f}s",
                a.kind,
                a.active_after,
                f"{a.observed_rate:.2f}",
                f"{a.capacity:.2f}",
            ]
            for a in scaler.scale_events()
        ],
        title="autoscaler decisions",
    )


if __name__ == "__main__":
    main()
